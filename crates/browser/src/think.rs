//! User think-time model.
//!
//! CookiePicker runs its hidden request during the user's *think time*
//! (§3.2, step 2), which Mah's empirical HTTP traffic model \[12\] puts at
//! more than 10 seconds on average. We model think time as a log-normal
//! distribution, the standard fit for inter-click gaps.

use cp_runtime::rng::Rng;

use cp_cookies::SimDuration;

/// A log-normal think-time model.
///
/// ```
/// use cp_browser::ThinkTimeModel;
/// use cp_runtime::rng::SeedableRng;
///
/// let model = ThinkTimeModel::default();
/// let mut rng = cp_runtime::rng::StdRng::seed_from_u64(1);
/// let mean_ms: u64 = (0..500).map(|_| model.sample(&mut rng).as_millis()).sum::<u64>() / 500;
/// assert!(mean_ms > 10_000, "average think time exceeds 10 s, got {mean_ms} ms");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ThinkTimeModel {
    /// Mean of the underlying normal (log-milliseconds).
    pub mu: f64,
    /// Standard deviation of the underlying normal.
    pub sigma: f64,
    /// Lower clamp, so a user never clicks "instantly".
    pub min: SimDuration,
    /// Upper clamp, so one sample cannot stall an experiment.
    pub max: SimDuration,
}

impl Default for ThinkTimeModel {
    /// Median ≈ 11.6 s, mean ≈ 13 s — consistent with Mah's ">10 s".
    fn default() -> Self {
        ThinkTimeModel {
            mu: (11_600.0f64).ln(),
            sigma: 0.55,
            min: SimDuration::from_millis(1_500),
            max: SimDuration::from_secs(120),
        }
    }
}

impl ThinkTimeModel {
    /// Draws one think time.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        // Box-Muller transform (rand 0.8 core has no normal distribution).
        let u1: f64 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let ms = (self.mu + self.sigma * z).exp();
        let ms = ms.clamp(self.min.as_millis() as f64, self.max.as_millis() as f64);
        SimDuration::from_millis(ms as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_runtime::rng::{SeedableRng, StdRng};

    #[test]
    fn samples_within_clamps() {
        let m = ThinkTimeModel::default();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let t = m.sample(&mut rng);
            assert!(t >= m.min && t <= m.max);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let m = ThinkTimeModel::default();
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..20).map(|_| m.sample(&mut rng).as_millis()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..20).map(|_| m.sample(&mut rng).as_millis()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn mean_exceeds_ten_seconds() {
        let m = ThinkTimeModel::default();
        let mut rng = StdRng::seed_from_u64(7);
        let mean: u64 = (0..2_000).map(|_| m.sample(&mut rng).as_millis()).sum::<u64>() / 2_000;
        assert!(mean > 10_000, "{mean}");
    }
}
