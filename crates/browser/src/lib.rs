//! A simulated Web browser: the host environment for CookiePicker.
//!
//! Models the parts of Firefox 1.5 that the paper's extension interacts
//! with:
//!
//! * the **page-view pipeline** (§3.1): the container-page request, redirect
//!   filtering, cookie attachment per policy, `Set-Cookie` processing,
//!   DOM construction with the bundled parser, and parallel fetches of the
//!   page's embedded objects;
//! * a **cookie jar** ([`cp_cookies::CookieJar`]) with first/third-party
//!   classification against the top-level page;
//! * a **think-time model** (§3.2 cites Mah's empirical HTTP model: the
//!   average think time is more than 10 s);
//! * an **extension hook** ([`BrowserExtension`]) invoked after every page
//!   render — the equivalent of the Firefox event CookiePicker listens to.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use cp_browser::Browser;
//! use cp_cookies::CookiePolicy;
//! use cp_net::{SimNetwork, Url};
//! use cp_webworld::{SiteServer, SiteSpec, Category};
//!
//! let spec = SiteSpec::new("demo.example", Category::News, 1);
//! let mut net = SimNetwork::new(1);
//! net.register("demo.example", SiteServer::new(spec));
//!
//! let mut browser = Browser::new(Arc::new(net), CookiePolicy::AcceptAll, 42);
//! let view = browser.visit(&Url::parse("http://demo.example/").unwrap()).unwrap();
//! assert!(view.dom.body().is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod browser;
pub mod pageview;
pub mod session;
pub mod think;

pub use browser::{extract_object_urls, party_of, Browser, BrowserExtension, PageContext};
pub use pageview::PageView;
pub use session::RandomSurfer;
pub use think::ThinkTimeModel;
