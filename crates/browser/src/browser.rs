//! The browser: page-view pipeline, cookie wiring, extension hooks.

use std::sync::Arc;

use cp_runtime::rng::{SeedableRng, StdRng};

use cp_cookies::{
    encode_cookie_header, parse_set_cookie, same_site, CookieJar, CookiePolicy, Party, SimDuration,
    SimTime,
};
use cp_html::{parse_document, Document, NodeId};
use cp_net::{Method, NetError, Request, Response, SimNetwork, Url};

use crate::pageview::PageView;
use crate::think::ThinkTimeModel;

/// Maximum redirects followed while locating "the real initial container
/// document page" (§3.2, step 1).
const MAX_REDIRECTS: usize = 5;

/// The context handed to a [`BrowserExtension`] after each page render —
/// the equivalent of the DOM-ready event CookiePicker hooks in Firefox.
pub struct PageContext<'a> {
    /// The rendered page view (regular request/response/DOM).
    pub view: &'a PageView,
    /// The browser's cookie jar (mutable: extensions mark/remove cookies).
    pub jar: &'a mut CookieJar,
    /// The active cookie policy.
    pub policy: CookiePolicy,
    /// The network, for issuing hidden requests.
    pub network: &'a SimNetwork,
    /// Simulated time when the page finished rendering.
    pub now: SimTime,
    /// Time the extension has consumed after render (hidden request latency
    /// etc.) — added to the browser clock when the hook returns. This runs
    /// concurrently with user think time, so it normally does not delay the
    /// next navigation.
    pub elapsed: SimDuration,
    /// The think time the user will spend on this page (pre-drawn; the
    /// browser's next [`think`](Browser::think) consumes the same value).
    /// Extensions budget hidden-request deadlines against it so their work
    /// stays hidden inside the pause.
    pub think_budget: SimDuration,
}

impl PageContext<'_> {
    /// Advances the extension's elapsed time.
    pub fn advance(&mut self, d: SimDuration) {
        self.elapsed += d;
    }
}

/// A browser extension invoked after every page render.
pub trait BrowserExtension {
    /// Called once the page is rendered and its DOM is available.
    fn on_page_loaded(&mut self, ctx: &mut PageContext<'_>);
}

/// One entry of the browser's object cache.
#[derive(Debug, Clone)]
struct CachedObject {
    etag: String,
}

/// The simulated browser.
pub struct Browser {
    network: Arc<SimNetwork>,
    /// The cookie jar (public: tests and experiments inspect it directly,
    /// like about:config power users).
    pub jar: CookieJar,
    policy: CookiePolicy,
    clock: SimTime,
    think: ThinkTimeModel,
    /// The think time already drawn for the current page, if any — drawn
    /// early by [`visit_with`](Browser::visit_with) so extensions can budget
    /// against it, then consumed by [`think`](Browser::think). Keeping draw
    /// order identical either way preserves the seeded RNG stream.
    pending_think: Option<SimDuration>,
    rng: StdRng,
    user_agent: String,
    /// ETag cache for embedded objects (conditional GETs on revisit).
    object_cache: std::collections::HashMap<String, CachedObject>,
    cache_hits: u64,
}

impl Browser {
    /// Creates a browser over `network` with the given cookie policy and a
    /// deterministic seed (drives think times).
    pub fn new(network: Arc<SimNetwork>, policy: CookiePolicy, seed: u64) -> Self {
        Browser {
            network,
            jar: CookieJar::new(),
            policy,
            clock: SimTime::EPOCH,
            think: ThinkTimeModel::default(),
            pending_think: None,
            rng: StdRng::seed_from_u64(seed),
            user_agent: "Mozilla/5.0 (X11; U; Linux) Gecko/20061025 Firefox/1.5.0.8".to_string(),
            object_cache: std::collections::HashMap::new(),
            cache_hits: 0,
        }
    }

    /// Number of embedded-object fetches answered by `304 Not Modified`
    /// revalidations so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Sets the simulated clock (for experiments that need a specific
    /// start instant).
    pub fn set_clock(&mut self, t: SimTime) {
        self.clock = t;
    }

    /// The network this browser is attached to.
    pub fn network(&self) -> &SimNetwork {
        &self.network
    }

    /// The active cookie policy.
    pub fn policy(&self) -> CookiePolicy {
        self.policy
    }

    /// Replaces the cookie policy.
    pub fn set_policy(&mut self, policy: CookiePolicy) {
        self.policy = policy;
    }

    /// Simulates the user thinking before the next click, advancing the
    /// clock; returns the sampled think time.
    pub fn think(&mut self) -> SimDuration {
        let t = self.pending_think.take().unwrap_or_else(|| self.think.sample(&mut self.rng));
        self.clock += t;
        t
    }

    fn build_request(&self, url: &Url, top_host: &str) -> Request {
        let mut req = Request::new(Method::Get, url.clone());
        req.headers.set("Host", url.host());
        req.headers.set("User-Agent", self.user_agent.clone());
        req.headers.set("Accept", "text/html,*/*");
        let party = party_of(url.host(), top_host);
        let send: Vec<_> = self
            .jar
            .cookies_for(url.host(), url.path(), self.clock)
            .into_iter()
            .filter(|c| self.policy.should_send(c, party))
            .filter(|c| !c.secure || url.is_secure())
            .collect();
        if !send.is_empty() {
            req.headers.set("Cookie", encode_cookie_header(send));
        }
        req
    }

    fn ingest_set_cookies(&mut self, response: &Response, host: &str, top_host: &str) {
        let party = party_of(host, top_host);
        for header in response.set_cookies() {
            if let Ok(cookie) = parse_set_cookie(header, host, self.clock) {
                if self.policy.should_store(&cookie, party) {
                    self.jar.store(cookie, self.clock);
                }
            }
        }
    }

    /// Visits a URL: fetches the container page (following redirects),
    /// processes cookies, builds the DOM, and fetches embedded objects in
    /// parallel.
    ///
    /// # Errors
    ///
    /// Propagates [`NetError`] from the container fetch (object-fetch
    /// failures for unknown hosts are skipped, like a broken image).
    pub fn visit(&mut self, url: &Url) -> Result<PageView, NetError> {
        let top_host = url.host().to_string();
        let start = self.clock;
        let mut current = url.clone();
        let mut redirects = 0;
        let (request, response) = loop {
            let req = self.build_request(&current, &top_host);
            let out = self.network.fetch(&req, self.clock)?;
            self.clock += out.latency;
            self.ingest_set_cookies(&out.response, current.host(), &top_host);
            if out.response.status.is_redirect() && redirects < MAX_REDIRECTS {
                if let Some(loc) = out.response.headers.get("location") {
                    current = current.join(loc);
                    redirects += 1;
                    continue;
                }
            }
            break (req, out.response);
        };

        let dom = parse_document(&response.body_string());
        let object_urls = extract_object_urls(&dom, &current);

        // Objects fetch in parallel: the clock advances by the slowest one.
        let mut slowest = SimDuration::ZERO;
        let mut fetched = 0usize;
        for obj_url in &object_urls {
            let mut req = self.build_request(obj_url, &top_host);
            let key = obj_url.to_string();
            if let Some(cached) = self.object_cache.get(&key) {
                req.headers.set("If-None-Match", cached.etag.clone());
            }
            match self.network.fetch(&req, self.clock) {
                Ok(out) => {
                    self.ingest_set_cookies(&out.response, obj_url.host(), &top_host);
                    if out.response.status == cp_net::StatusCode::NOT_MODIFIED {
                        self.cache_hits += 1;
                    } else if let Some(etag) = out.response.headers.get("etag") {
                        self.object_cache.insert(key, CachedObject { etag: etag.to_string() });
                    }
                    slowest = slowest.max(out.latency);
                    fetched += 1;
                }
                Err(_) => { /* broken embed or flaky transport; skip */ }
            }
        }
        self.clock += slowest;

        Ok(PageView {
            url: current,
            container_request: request,
            container_response: response,
            dom,
            redirects,
            objects: fetched,
            load_time: self.clock - start,
        })
    }

    /// Visits a URL and then runs `ext` on the rendered page, exactly like
    /// Firefox firing a load event at CookiePicker.
    pub fn visit_with<E: BrowserExtension>(
        &mut self,
        url: &Url,
        ext: &mut E,
    ) -> Result<PageView, NetError> {
        let view = self.visit(url)?;
        // Pre-draw the user's think time for this page so the extension can
        // budget its hidden work against the pause it will hide inside.
        let think_budget = match self.pending_think {
            Some(t) => t,
            None => {
                let t = self.think.sample(&mut self.rng);
                self.pending_think = Some(t);
                t
            }
        };
        let mut jar = std::mem::take(&mut self.jar);
        let mut ctx = PageContext {
            view: &view,
            jar: &mut jar,
            policy: self.policy,
            network: &self.network,
            now: self.clock,
            elapsed: SimDuration::ZERO,
            think_budget,
        };
        ext.on_page_loaded(&mut ctx);
        let elapsed = ctx.elapsed;
        self.jar = jar;
        // The hidden request runs during think time; it only delays the
        // browser if it outlives the think pause, which the think() caller
        // models. We still account a small constant for event dispatch.
        let _ = elapsed;
        Ok(view)
    }
}

impl std::fmt::Debug for Browser {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Browser")
            .field("clock", &self.clock)
            .field("policy", &self.policy)
            .field("cookies", &self.jar.len())
            .finish()
    }
}

/// First/third-party classification of a request host against the page's
/// top-level host.
pub fn party_of(request_host: &str, top_host: &str) -> Party {
    if same_site(request_host, top_host) {
        Party::First
    } else {
        Party::Third
    }
}

/// Extracts the embedded-object URLs of a page: `img[src]`, `script[src]`,
/// and `link[rel=stylesheet][href]`, resolved against the page URL —
/// honouring a `<base href>` element if the document carries one.
pub fn extract_object_urls(dom: &Document, page_url: &Url) -> Vec<Url> {
    // <base href> (first one wins, per spec) rebases every relative
    // reference on the page.
    let base = dom
        .find_element(NodeId::DOCUMENT, "base")
        .and_then(|n| dom.attr(n, "href"))
        .map(|href| page_url.join(href))
        .unwrap_or_else(|| page_url.clone());
    let base = &base;
    let mut out = Vec::new();
    for n in dom.preorder(NodeId::DOCUMENT) {
        let Some(tag) = dom.tag_name(n) else { continue };
        let reference = match tag {
            "img" | "script" => dom.attr(n, "src"),
            "link" => {
                if dom.attr(n, "rel").is_some_and(|r| r.eq_ignore_ascii_case("stylesheet")) {
                    dom.attr(n, "href")
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some(r) = reference {
            if !r.is_empty() && !r.starts_with('#') && !r.starts_with("data:") {
                out.push(base.join(r));
            }
        }
    }
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_net::{Response, Server, StatusCode};
    use cp_webworld::{Category, CookieRole, CookieSpec, EffectSize, SiteServer, SiteSpec};

    fn world() -> (Arc<SimNetwork>, Url) {
        let spec = SiteSpec::new("site.example", Category::Shopping, 3)
            .with_cookie(CookieSpec::tracker("trk"))
            .with_cookie(CookieSpec::useful("pref", CookieRole::Preference, EffectSize::Medium))
            .with_cookie(CookieSpec::session("sid"));
        let mut net = SimNetwork::new(5);
        net.register("site.example", SiteServer::new(spec));
        (Arc::new(net), Url::parse("http://site.example/").unwrap())
    }

    #[test]
    fn visit_builds_dom_and_fetches_objects() {
        let (net, url) = world();
        let mut b = Browser::new(net, CookiePolicy::AcceptAll, 1);
        let view = b.visit(&url).unwrap();
        assert!(view.dom.body().is_some());
        assert!(view.objects >= 2, "css/js/images should be fetched, got {}", view.objects);
        assert_eq!(view.redirects, 0);
    }

    #[test]
    fn cookies_stored_and_replayed() {
        let (net, url) = world();
        let mut b = Browser::new(net, CookiePolicy::AcceptAll, 1);
        b.visit(&url).unwrap();
        assert!(b.jar.len() >= 3, "trk, pref, sid stored");
        // Second visit sends them back: the preference panel renders.
        let view = b.visit(&url).unwrap();
        assert!(view.container_request.cookie_header().unwrap().contains("pref="));
        assert!(view.html().contains("id=\"sidebar\""));
    }

    #[test]
    fn first_visit_has_no_cookie_header() {
        let (net, url) = world();
        let mut b = Browser::new(net, CookiePolicy::AcceptAll, 1);
        let view = b.visit(&url).unwrap();
        assert!(view.container_request.cookie_header().is_none());
        assert!(!view.html().contains("id=\"sidebar\""));
    }

    #[test]
    fn block_all_policy_stores_nothing() {
        let (net, url) = world();
        let mut b = Browser::new(net, CookiePolicy::BlockAll, 1);
        b.visit(&url).unwrap();
        assert!(b.jar.is_empty());
    }

    #[test]
    fn useful_only_policy_withholds_unmarked_persistent() {
        let (net, url) = world();
        let mut b = Browser::new(net, CookiePolicy::UsefulOnly, 1);
        b.visit(&url).unwrap();
        assert!(b.jar.len() >= 3, "storage still allowed");
        let view = b.visit(&url).unwrap();
        let header = view.container_request.cookie_header().unwrap_or("").to_string();
        assert!(header.contains("sid="), "session cookie sent: {header}");
        assert!(!header.contains("trk="), "unmarked persistent withheld: {header}");
        assert!(!header.contains("pref="), "unmarked persistent withheld: {header}");
        // Mark pref useful → now it flows.
        b.jar.mark_useful("site.example", &["pref"]);
        let view = b.visit(&url).unwrap();
        assert!(view.container_request.cookie_header().unwrap().contains("pref="));
    }

    #[test]
    fn object_cache_revalidates_on_revisit() {
        let (net, url) = world();
        let mut b = Browser::new(net, CookiePolicy::AcceptAll, 1);
        b.visit(&url).unwrap();
        assert_eq!(b.cache_hits(), 0, "cold cache on first visit");
        let before = b.network().stats().bytes_down;
        b.visit(&url).unwrap();
        assert!(b.cache_hits() > 0, "revisit revalidates with 304s");
        let second_visit_bytes = b.network().stats().bytes_down - before;
        // The 304 responses carry no bodies: the second visit is cheaper
        // than the first.
        assert!(second_visit_bytes < before, "{second_visit_bytes} vs {before}");
    }

    #[test]
    fn clock_advances_with_visits_and_thinking() {
        let (net, url) = world();
        let mut b = Browser::new(net, CookiePolicy::AcceptAll, 1);
        let t0 = b.now();
        b.visit(&url).unwrap();
        let t1 = b.now();
        assert!(t1 > t0, "network latency advances the clock");
        let thought = b.think();
        assert_eq!(b.now(), t1 + thought);
    }

    #[test]
    fn redirects_followed_to_container() {
        struct Redirector;
        impl Server for Redirector {
            fn handle(&self, req: &Request, _now: SimTime) -> Response {
                match req.url.path() {
                    "/" => Response::redirect("/real"),
                    "/real" => Response::html(StatusCode::OK, "<p>real container</p>"),
                    _ => Response::not_found(),
                }
            }
        }
        let mut net = SimNetwork::new(2);
        net.register("r.example", Redirector);
        let mut b = Browser::new(Arc::new(net), CookiePolicy::AcceptAll, 1);
        let view = b.visit(&Url::parse("http://r.example/").unwrap()).unwrap();
        assert_eq!(view.redirects, 1);
        assert_eq!(view.url.path(), "/real");
        assert!(view.html().contains("real container"));
    }

    #[test]
    fn extension_hook_runs_with_jar_access() {
        struct Marker;
        impl BrowserExtension for Marker {
            fn on_page_loaded(&mut self, ctx: &mut PageContext<'_>) {
                ctx.jar.mark_useful(ctx.view.top_host(), &["trk"]);
                ctx.advance(SimDuration::from_millis(7));
            }
        }
        let (net, url) = world();
        let mut b = Browser::new(net, CookiePolicy::AcceptAll, 1);
        b.visit_with(&url, &mut Marker).unwrap();
        assert!(b.jar.iter().any(|c| c.name == "trk" && c.useful()));
    }

    #[test]
    fn party_classification() {
        assert_eq!(party_of("img.site.example", "www.site.example"), Party::First);
        assert_eq!(party_of("tracker.net", "www.site.example"), Party::Third);
    }

    #[test]
    fn base_href_rebases_relative_objects() {
        let dom = parse_document(
            r#"<head><base href="http://cdn.example/assets/"></head>
               <body><img src="logo.png"><img src="/abs.png"></body>"#,
        );
        let page = Url::parse("http://site.example/deep/page").unwrap();
        let urls = extract_object_urls(&dom, &page);
        let strs: Vec<String> = urls.iter().map(Url::to_string).collect();
        assert_eq!(strs, vec!["http://cdn.example/assets/logo.png", "http://cdn.example/abs.png"]);
    }

    #[test]
    fn object_extraction_filters_and_resolves() {
        let dom = parse_document(
            r##"<img src="/a.png"><img src="data:xyz"><script src="s.js"></script>
               <link rel="stylesheet" href="/c.css"><link rel="icon" href="/i.ico"><img src="#f">"##,
        );
        let base = Url::parse("http://h.example/dir/page").unwrap();
        let urls = extract_object_urls(&dom, &base);
        let strs: Vec<String> = urls.iter().map(Url::to_string).collect();
        assert_eq!(
            strs,
            vec!["http://h.example/a.png", "http://h.example/dir/s.js", "http://h.example/c.css"]
        );
    }
}
