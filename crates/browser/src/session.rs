//! Browsing-session drivers: scripted visit sequences and a random surfer.
//!
//! The paper's experiments "visit over 25 Web pages" per site (§5.2.1); a
//! real user reaches those pages by following links. [`RandomSurfer`]
//! reproduces that: starting from a site's front page it repeatedly picks a
//! same-site link from the rendered DOM (with an occasional jump back to
//! the front page), thinking between clicks — organic coverage for FORCUM
//! training instead of a fixed path list.

use cp_runtime::rng::{Rng, SeedableRng, StdRng};

use cp_net::{NetError, Url};

use crate::browser::{Browser, BrowserExtension};
use crate::pageview::PageView;

/// A same-site random surfer.
#[derive(Debug)]
pub struct RandomSurfer {
    rng: StdRng,
    /// Probability of jumping back to the entry page instead of following a
    /// link (the "teleport" of surfing models).
    pub restart_probability: f64,
}

impl RandomSurfer {
    /// Creates a surfer with the given seed and a 15% restart probability.
    pub fn new(seed: u64) -> Self {
        RandomSurfer { rng: StdRng::seed_from_u64(seed), restart_probability: 0.15 }
    }

    /// Same-site links of a page, resolved against its URL.
    pub fn same_site_links(view: &PageView) -> Vec<Url> {
        let doc = &view.dom;
        let mut out = Vec::new();
        for n in doc.preorder_all() {
            if doc.tag_name(n) == Some("a") {
                if let Some(href) = doc.attr(n, "href") {
                    if href.is_empty() || href.starts_with('#') {
                        continue;
                    }
                    let target = view.url.join(href);
                    if target.host() == view.url.host() && !out.contains(&target) {
                        out.push(target);
                    }
                }
            }
        }
        out
    }

    /// Surfs `clicks` pages starting at `entry`, driving `ext` on each
    /// view and thinking between clicks. Returns the visited URLs.
    ///
    /// # Errors
    ///
    /// Propagates the first network error (an unknown host mid-session).
    pub fn surf<E: BrowserExtension>(
        &mut self,
        browser: &mut Browser,
        entry: &Url,
        clicks: usize,
        ext: &mut E,
    ) -> Result<Vec<Url>, NetError> {
        let mut visited = Vec::with_capacity(clicks);
        let mut current = entry.clone();
        for _ in 0..clicks {
            let view = browser.visit_with(&current, ext)?;
            visited.push(view.url.clone());
            browser.think();
            let links = Self::same_site_links(&view);
            current = if links.is_empty() || self.rng.gen::<f64>() < self.restart_probability {
                entry.clone()
            } else {
                links[self.rng.gen_range(0..links.len())].clone()
            };
        }
        Ok(visited)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use cp_cookies::CookiePolicy;
    use cp_net::SimNetwork;
    use cp_webworld::{Category, CookieSpec, SiteServer, SiteSpec};

    struct Noop;
    impl BrowserExtension for Noop {
        fn on_page_loaded(&mut self, _ctx: &mut crate::browser::PageContext<'_>) {}
    }

    fn world() -> (Browser, Url) {
        let spec =
            SiteSpec::new("surf.example", Category::News, 61).with_cookie(CookieSpec::tracker("t"));
        let mut net = SimNetwork::new(1);
        net.register("surf.example", SiteServer::new(spec));
        let browser = Browser::new(Arc::new(net), CookiePolicy::AcceptAll, 2);
        (browser, Url::parse("http://surf.example/").unwrap())
    }

    #[test]
    fn surfer_visits_requested_click_count() {
        let (mut browser, entry) = world();
        let mut surfer = RandomSurfer::new(5);
        let visited = surfer.surf(&mut browser, &entry, 12, &mut Noop).unwrap();
        assert_eq!(visited.len(), 12);
        assert!(visited.iter().all(|u| u.host() == "surf.example"));
    }

    #[test]
    fn surfer_reaches_multiple_pages() {
        let (mut browser, entry) = world();
        let mut surfer = RandomSurfer::new(5);
        let visited = surfer.surf(&mut browser, &entry, 20, &mut Noop).unwrap();
        let distinct: std::collections::HashSet<String> =
            visited.iter().map(|u| u.path().to_string()).collect();
        assert!(distinct.len() >= 3, "surfing should cover several pages: {distinct:?}");
    }

    #[test]
    fn link_extraction_filters_offsite_and_fragments() {
        let (mut browser, entry) = world();
        let view = browser.visit(&entry).unwrap();
        let links = RandomSurfer::same_site_links(&view);
        assert!(!links.is_empty());
        assert!(links.iter().all(|u| u.host() == "surf.example"));
    }

    #[test]
    fn deterministic_surf() {
        let route = |seed| {
            let (mut browser, entry) = world();
            let mut surfer = RandomSurfer::new(seed);
            surfer
                .surf(&mut browser, &entry, 10, &mut Noop)
                .unwrap()
                .iter()
                .map(|u| u.path().to_string())
                .collect::<Vec<_>>()
        };
        assert_eq!(route(9), route(9));
    }
}
