//! The record of one rendered page view.

use cp_cookies::SimDuration;
use cp_html::Document;
use cp_net::{Request, Response, Url};

/// Everything the browser retained about one page view — the regular
/// requests/responses of Figure 1 plus the parsed DOM.
#[derive(Debug)]
pub struct PageView {
    /// Final URL of the container page (after redirects).
    pub url: Url,
    /// The container-page request exactly as sent (headers include the
    /// `Cookie` header, which CookiePicker's step 1 records).
    pub container_request: Request,
    /// The container-page response.
    pub container_response: Response,
    /// The DOM built by the browser's parser (the *regular DOM tree*).
    pub dom: Document,
    /// Number of redirects followed before the real container page.
    pub redirects: usize,
    /// Number of embedded objects fetched.
    pub objects: usize,
    /// Total page-load time: container latency + slowest parallel object.
    pub load_time: SimDuration,
}

impl PageView {
    /// The host of the container page — the *first party* for cookie
    /// classification.
    pub fn top_host(&self) -> &str {
        self.url.host()
    }

    /// The container page's HTML text.
    pub fn html(&self) -> String {
        self.container_response.body_string()
    }
}
