//! Readiness polling for nonblocking sockets — the event-loop substrate
//! of cp-serve.
//!
//! [`Poller`] wraps Linux `epoll` through `extern "C"` declarations
//! against the libc that `std` already links, so the workspace keeps its
//! zero-external-crate invariant while getting level-triggered readiness
//! notification for thousands of connections per loop thread. On every
//! other platform [`Poller::new`] returns `Unsupported` and the caller
//! falls back to its portable blocking path (cp-serve keeps the
//! accept-queue worker pool for exactly that).
//!
//! The surface is deliberately tiny: register a file descriptor with a
//! caller-chosen `token`, optionally arm write-readiness, and wait. All
//! registrations are level-triggered — a readable fd keeps firing until
//! drained, which composes with incremental parsers that stop at
//! `WouldBlock`.

/// A readiness event delivered by [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PollEvent {
    /// The token the fd was registered with.
    pub token: u64,
    /// Readable, or peer-closed/errored (which reads report precisely).
    pub readable: bool,
    /// Writable (only delivered when write interest is armed).
    pub writable: bool,
}

#[cfg(target_os = "linux")]
mod sys {
    //! Raw epoll bindings. The constants mirror `<sys/epoll.h>`; the
    //! event struct is packed on x86 (kernel ABI) and natural elsewhere.

    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
    #[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
    #[derive(Clone, Copy, Debug)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn close(fd: i32) -> i32;
    }

    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    /// Wake only one of the epoll instances sharing a listener
    /// (kernel ≥ 4.5); [`super::Poller::add_exclusive`] degrades to a
    /// plain registration when the kernel rejects it.
    pub const EPOLLEXCLUSIVE: u32 = 1 << 28;
}

/// Linux epoll implementation.
#[cfg(target_os = "linux")]
mod imp {
    use super::{sys, PollEvent};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    /// One epoll instance plus its reusable event buffer.
    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
        /// Scratch buffer reused across [`wait`](Poller::wait) calls.
        buf: Vec<sys::EpollEvent>,
    }

    /// Events deliverable per `wait` call; more stay queued in the kernel.
    const MAX_EVENTS: usize = 256;

    impl Poller {
        /// Creates an epoll instance (close-on-exec).
        pub fn new() -> io::Result<Poller> {
            // SAFETY: epoll_create1 takes a flag word and returns an fd or
            // -1; no pointers are involved.
            let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller { epfd, buf: vec![sys::EpollEvent { events: 0, data: 0 }; MAX_EVENTS] })
        }

        /// Whether this build has a native poller.
        pub const fn is_native() -> bool {
            true
        }

        fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            let mut event = sys::EpollEvent { events, data: token };
            // SAFETY: `event` outlives the call; the kernel copies it.
            let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut event) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        fn interest(writable: bool) -> u32 {
            sys::EPOLLIN | sys::EPOLLRDHUP | if writable { sys::EPOLLOUT } else { 0 }
        }

        /// Registers `fd` with read interest (plus write when `writable`),
        /// level-triggered.
        pub fn add(&self, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
            self.ctl(sys::EPOLL_CTL_ADD, fd, Self::interest(writable), token)
        }

        /// Registers a shared listener with `EPOLLEXCLUSIVE` so only one
        /// of the loops polling it wakes per connection; degrades to a
        /// plain registration on kernels that reject the flag.
        pub fn add_exclusive(&self, fd: RawFd, token: u64) -> io::Result<()> {
            let events = sys::EPOLLIN | sys::EPOLLEXCLUSIVE;
            match self.ctl(sys::EPOLL_CTL_ADD, fd, events, token) {
                Err(e) if e.raw_os_error() == Some(22) => {
                    self.ctl(sys::EPOLL_CTL_ADD, fd, sys::EPOLLIN, token)
                }
                other => other,
            }
        }

        /// Rearms `fd` with read interest (plus write when `writable`).
        pub fn modify(&self, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
            self.ctl(sys::EPOLL_CTL_MOD, fd, Self::interest(writable), token)
        }

        /// Deregisters `fd`. Closing the fd also deregisters it, so this
        /// is only needed when the fd outlives its interest.
        pub fn remove(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(sys::EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Blocks until at least one registered fd is ready or `timeout`
        /// passes (`None` = forever), then appends the ready events to
        /// `events` and returns how many were delivered.
        pub fn wait(
            &mut self,
            events: &mut Vec<PollEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let timeout_ms = match timeout {
                None => -1i32,
                Some(t) => t.as_millis().min(i32::MAX as u128) as i32,
            };
            // SAFETY: `buf` is a live, correctly-sized allocation for the
            // whole call; the kernel writes at most MAX_EVENTS entries.
            let n = unsafe {
                sys::epoll_wait(self.epfd, self.buf.as_mut_ptr(), self.buf.len() as i32, timeout_ms)
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                // A signal interrupting the wait is a spurious wakeup.
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(err);
            }
            for raw in &self.buf[..n as usize] {
                let bits = raw.events;
                events.push(PollEvent {
                    token: raw.data,
                    readable: bits
                        & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP | sys::EPOLLERR)
                        != 0,
                    writable: bits & sys::EPOLLOUT != 0,
                });
            }
            Ok(n as usize)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: `epfd` is a valid fd this struct owns exclusively.
            unsafe { sys::close(self.epfd) };
        }
    }
}

/// Stub for platforms without a native poller: construction fails with
/// `Unsupported` and callers use their blocking fallback.
#[cfg(not(target_os = "linux"))]
mod imp {
    use super::PollEvent;
    use std::io;
    use std::time::Duration;

    /// The raw fd type on platforms where std does not expose one.
    pub type RawFd = i32;

    #[derive(Debug)]
    pub struct Poller {}

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Err(io::Error::new(io::ErrorKind::Unsupported, "no native poller on this platform"))
        }

        pub const fn is_native() -> bool {
            false
        }

        pub fn add(&self, _fd: RawFd, _token: u64, _writable: bool) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }

        pub fn add_exclusive(&self, _fd: RawFd, _token: u64) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }

        pub fn modify(&self, _fd: RawFd, _token: u64, _writable: bool) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }

        pub fn remove(&self, _fd: RawFd) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }

        pub fn wait(
            &mut self,
            _events: &mut Vec<PollEvent>,
            _timeout: Option<Duration>,
        ) -> io::Result<usize> {
            unreachable!("stub poller cannot be constructed")
        }
    }
}

pub use imp::Poller;

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Duration;

    #[test]
    fn listener_becomes_readable_on_connect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.add(listener.as_raw_fd(), 7, false).unwrap();

        let mut events = Vec::new();
        let n = poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert_eq!(n, 0, "no pending connection → timeout with no events");

        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let n = poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        assert!(!events[0].writable);
    }

    #[test]
    fn stream_reports_read_and_write_readiness() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        client.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        // Write interest on an idle connected socket fires immediately
        // (the send buffer is empty).
        poller.add(client.as_raw_fd(), 1, true).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.writable));

        // Drop write interest, then make the socket readable.
        poller.modify(client.as_raw_fd(), 1, false).unwrap();
        server_side.write_all(b"ping").unwrap();
        events.clear();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable && !e.writable));

        // Level-triggered: unread bytes keep the fd ready.
        events.clear();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));

        let mut sink = [0u8; 8];
        let mut reader = &client;
        assert_eq!(reader.read(&mut sink).unwrap(), 4);
        events.clear();
        let n = poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert_eq!(n, 0, "drained socket is quiet again");
    }

    #[test]
    fn peer_close_is_reported_as_readable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        client.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller.add(client.as_raw_fd(), 3, false).unwrap();
        drop(server_side);
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(
            events.iter().any(|e| e.token == 3 && e.readable),
            "hangup must surface as readability so the read path sees EOF"
        );
    }

    #[test]
    fn remove_stops_delivery() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.add(listener.as_raw_fd(), 9, false).unwrap();
        poller.remove(listener.as_raw_fd()).unwrap();
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut events = Vec::new();
        let n = poller.wait(&mut events, Some(Duration::from_millis(50))).unwrap();
        assert_eq!(n, 0, "deregistered fds deliver nothing");
    }

    #[test]
    fn exclusive_listener_registration_is_accepted() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.add_exclusive(listener.as_raw_fd(), 4).unwrap();
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 4 && e.readable));
        assert!(Poller::is_native());
    }
}
