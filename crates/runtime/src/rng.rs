//! Seedable pseudo-random number generation.
//!
//! A drop-in replacement for the subset of the `rand` crate the workspace
//! uses, built on SplitMix64 (seeding) and xoshiro256++ (the stream). Both
//! algorithms are public-domain reference designs by Blackman & Vigna; the
//! stream is deterministic across platforms, which is what the experiment
//! harness needs: every table in the paper reproduction is exactly
//! re-runnable from a `u64` seed.
//!
//! ```
//! use cp_runtime::rng::{Rng, SeedableRng, StdRng};
//! let mut rng = StdRng::seed_from_u64(7);
//! let x: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&x));
//! let i = rng.gen_range(10..20);
//! assert!((10..20).contains(&i));
//! ```

use std::ops::{Range, RangeInclusive};

/// SplitMix64: a tiny, fast generator used here to expand a `u64` seed into
/// the 256-bit xoshiro state (the expansion recommended by the xoshiro
/// authors, so that nearby seeds yield unrelated streams).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a raw seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ — the workspace's standard generator.
///
/// 256 bits of state, period 2^256 − 1, passes BigCrush; more than enough
/// statistical quality for population sampling, latency jitter, and
/// think-time models while staying a handful of shifts and adds.
#[derive(Debug, Clone)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

/// The workspace's default RNG (named for call-site compatibility with
/// `rand::rngs::StdRng`).
pub type StdRng = Xoshiro256pp;

#[inline]
const fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

impl Xoshiro256pp {
    /// Creates a generator from explicit state. All-zero state is mapped to
    /// a fixed non-zero state (all-zero is the one forbidden fixed point).
    pub fn from_state(mut s: [u64; 4]) -> Self {
        if s == [0; 4] {
            s = [0x9e37_79b9_7f4a_7c15, 0x6a09_e667_f3bc_c909, 0xbb67_ae85_84ca_a73b, 1];
        }
        Xoshiro256pp { s }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = rotl(self.s[3], 45);
        result
    }
}

/// Construction from a `u64` seed (mirrors `rand::SeedableRng` narrowly).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for Xoshiro256pp {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256pp::from_state([sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()])
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64::new(seed)
    }
}

/// Types that can be drawn uniformly from an [`Rng`] via [`Rng::gen`].
pub trait FromRandom {
    /// Draws one value.
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl FromRandom for u64 {
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRandom for u32 {
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRandom for bool {
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRandom for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (the standard
    /// `(x >> 11) * 2^-53` construction).
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRandom for f32 {
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types that support uniform range sampling.
pub trait SampleUniform: Copy {
    /// Uniform draw from the inclusive span `[low, high]`.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as u64).wrapping_sub(low as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as $u).wrapping_sub(low as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);
impl_sample_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "gen_range: empty range");
        low + f64::from_random(rng) * (high - low)
    }
}

/// Unbiased uniform draw from `[0, n)` by widening multiply + rejection
/// (Lemire's method), `n >= 1`.
fn uniform_u64_below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n >= 1);
    let mut wide = (rng.next_u64() as u128) * (n as u128);
    if (wide as u64) < n {
        // Rejection threshold: (2^64 - n) mod n. Only computed on the slow
        // path, which triggers with probability < n / 2^64.
        let threshold = n.wrapping_neg() % n;
        while (wide as u64) < threshold {
            wide = (rng.next_u64() as u128) * (n as u128);
        }
    }
    (wide >> 64) as u64
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + Dec> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_inclusive(rng, self.start, self.end.dec())
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Helper for half-open integer ranges: the largest value strictly below
/// `self`.
pub trait Dec {
    /// `self - 1` for integers; identity for floats (the float upper bound
    /// is already exclusive by construction of the `[0,1)` multiplier).
    fn dec(self) -> Self;
}

macro_rules! impl_dec_int {
    ($($t:ty),*) => {$(impl Dec for $t { fn dec(self) -> Self { self - 1 } })*};
}
impl_dec_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Dec for f64 {
    fn dec(self) -> Self {
        self
    }
}

/// The `rand::Rng`-like trait: everything downstream code needs from a
/// generator, object-safe in its core method so `&mut R` forwarding and
/// `?Sized` bounds keep working at existing call sites.
pub trait Rng {
    /// Next raw 64-bit output — the single required method.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniform value of type `T` (`u64`, `u32`, `f64`, `f32`,
    /// `bool`).
    fn gen<T: FromRandom>(&mut self) -> T {
        T::from_random(self)
    }

    /// Draws uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::from_random(self) < p
    }

    /// Fisher–Yates shuffle in place.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = uniform_u64_below(self, i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Samples `n` distinct elements (by index) without replacement,
    /// preserving draw order. Returns fewer than `n` if the slice is
    /// shorter.
    fn sample<T: Clone>(&mut self, slice: &[T], n: usize) -> Vec<T> {
        let n = n.min(slice.len());
        // Partial Fisher–Yates over an index vector: O(len) setup, O(n) draws.
        let mut idx: Vec<usize> = (0..slice.len()).collect();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let j = i + uniform_u64_below(self, (idx.len() - i) as u64) as usize;
            idx.swap(i, j);
            out.push(slice[idx[i]].clone());
        }
        out
    }
}

impl Rng for Xoshiro256pp {
    fn next_u64(&mut self) -> u64 {
        Xoshiro256pp::next_u64(self)
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Zipf(s) sampler over ranks `1..=n` using Devroye's rejection method.
///
/// Memory and setup are O(1) regardless of `n`, so it scales to worlds of
/// millions of hosts where a cumulative-weight table would not. Sampling is
/// rejection against the majorizing density `g(x) = 1` on `[1, 2)` and
/// `g(x) = (x - 1)^-s` on `[2, n + 1)`; the acceptance rate is bounded
/// below by a constant for every `s ≥ 0`, so expected draws per sample
/// are O(1) too.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zipf {
    n: u64,
    s: f64,
    /// Total mass under the majorizer: `1 + H(n)`.
    t: f64,
}

impl Zipf {
    /// Creates a sampler over ranks `1..=n` with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, or if `s` is negative or not finite.
    pub fn new(n: u64, s: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite() && s >= 0.0, "Zipf exponent must be finite and >= 0, got {s}");
        Zipf { n, s, t: 1.0 + zipf_h(n as f64, s) }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Exponent `s`.
    pub fn s(&self) -> f64 {
        self.s
    }

    /// Draws one rank in `1..=n`; rank 1 is the most probable.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        loop {
            let u: f64 = rng.gen::<f64>() * self.t;
            let (x, gx) = if u < 1.0 {
                // The flat head of the majorizer always lands on rank 1.
                (1.0 + u, 1.0)
            } else {
                let w = zipf_h_inv(u - 1.0, self.s);
                (1.0 + w, w.powf(-self.s))
            };
            let k = x.floor().min(self.n as f64).max(1.0);
            // Accept with probability f(k) / g(x) where f(k) = k^-s.
            let fk = k.powf(-self.s);
            if rng.gen::<f64>() * gx <= fk {
                return k as u64;
            }
        }
    }
}

/// `H(u) = ∫₁ᵘ x^-s dx` — the mass of the majorizer tail over `[2, 1 + u)`.
fn zipf_h(u: f64, s: f64) -> f64 {
    if (s - 1.0).abs() < 1e-9 {
        u.ln()
    } else {
        (u.powf(1.0 - s) - 1.0) / (1.0 - s)
    }
}

/// Inverse of [`zipf_h`] in its first argument.
fn zipf_h_inv(y: f64, s: f64) -> f64 {
    if (s - 1.0).abs() < 1e-9 {
        y.exp()
    } else {
        (1.0 + y * (1.0 - s)).powf(1.0 / (1.0 - s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_pinned_stream() {
        // Pinned regression vector: the first output for the all-ones state
        // is fully determined by the update rule (rotl(1 + 1, 23) + 1).
        // Any change to the stream silently invalidates every recorded
        // experiment seed, so the head of the stream is frozen here.
        let mut rng = Xoshiro256pp::from_state([1, 1, 1, 1]);
        assert_eq!(rng.next_u64(), (2u64 << 23) + 1);
        let tail: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        assert_eq!(tail, XOSHIRO_TAIL);
    }

    // Pinned from a verified run; outputs 2 and 3 were additionally checked
    // by hand against the update rule. See `xoshiro_pinned_stream`.
    const XOSHIRO_TAIL: [u64; 3] = [8388609, 16, 599233839366160];

    #[test]
    fn splitmix_pinned_stream() {
        // Same freezing rationale as `xoshiro_pinned_stream`.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), SPLITMIX_HEAD);
    }

    // SplitMix64(0) first output, fixed by the algorithm constants.
    const SPLITMIX_HEAD: u64 = 16294208416658607535;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn zero_state_is_escaped() {
        let mut rng = Xoshiro256pp::from_state([0; 4]);
        assert_ne!(rng.next_u64(), rng.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..9);
            assert!((3..9).contains(&x));
            let y = rng.gen_range(1..=4u64);
            assert!((1..=4).contains(&y));
            let z = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&z));
            let f = rng.gen_range(2.0..3.0);
            assert!((2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_single_value() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(rng.gen_range(7..8), 7);
        assert_eq!(rng.gen_range(7..=7), 7);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_empty_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _: usize = rng.gen_range(5..5);
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "every bucket should be hit: {seen:?}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // With 50 elements the identity permutation is vanishingly unlikely.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_without_replacement() {
        let mut rng = StdRng::seed_from_u64(4);
        let pool: Vec<u32> = (0..20).collect();
        let picked = rng.sample(&pool, 8);
        assert_eq!(picked.len(), 8);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8, "samples must be distinct");
        assert!(picked.iter().all(|x| pool.contains(x)));
        assert_eq!(rng.sample(&pool, 100).len(), 20, "clamped to slice length");
    }

    #[test]
    fn forwarding_through_mut_ref() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(6);
        let _ = draw(&mut rng);
        let mut r: &mut StdRng = &mut rng;
        let _ = draw(&mut r);
    }

    #[test]
    fn zipf_deterministic_and_in_range() {
        let z = Zipf::new(1_000_000, 1.1);
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..200).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..200).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
        assert!(a.iter().all(|&k| (1..=1_000_000).contains(&k)));
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let z = Zipf::new(10_000, 1.0);
        let mut rng = StdRng::seed_from_u64(9);
        let mut ones = 0usize;
        let mut tail = 0usize;
        for _ in 0..20_000 {
            let k = z.sample(&mut rng);
            if k == 1 {
                ones += 1;
            }
            if k > 100 {
                tail += 1;
            }
        }
        // For s = 1, n = 10^4: P(1) = 1/H_n ≈ 0.102, P(k > 100) ≈ 0.47.
        assert!((1_500..2_600).contains(&ones), "rank-1 mass off: {ones}");
        assert!(tail > 6_000, "tail mass collapsed: {tail}");
    }

    #[test]
    fn zipf_s_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 4];
        for _ in 0..8_000 {
            counts[(z.sample(&mut rng) - 1) as usize] += 1;
        }
        for &c in &counts {
            assert!((1_700..2_300).contains(&c), "uniform buckets off: {counts:?}");
        }
    }

    #[test]
    fn gen_bool_probability_sanity() {
        let mut rng = StdRng::seed_from_u64(8);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "~25% expected, got {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
