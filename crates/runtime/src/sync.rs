//! Lock wrappers with the ergonomics the codebase had under `parking_lot`:
//! `lock()` / `read()` / `write()` return guards directly, no
//! `Result`-unwrapping at every call site.
//!
//! Poisoning is deliberately ignored (`into_inner` on a poisoned lock): the
//! simulation holds locks only around tiny regions (an RNG draw, a stats
//! bump), and a panic there already aborts the experiment run that owns the
//! data.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock; see the module docs for the poisoning policy.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a lock around `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock with the same guard-returning API.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock around `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }

    #[test]
    fn mutex_survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot-style: a poisoned lock still hands out its data.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn shared_across_scoped_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1_000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 4_000);
    }
}
