//! Scoped data-parallel helpers built on `std::thread::scope`.
//!
//! Replaces the `crossbeam::scope` fan-outs in the experiment bins: each
//! input item is processed exactly once, results come back in input order,
//! and the number of OS threads is capped (one thread per item does not
//! scale to the measurement-study populations).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Default worker cap: the machine's available parallelism (at least 1).
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Applies `f` to every item of `items` on a pool of scoped worker threads
/// and returns the results **in input order**.
///
/// `max_workers` caps the pool (`None` ⇒ [`default_workers`]); the pool
/// never exceeds `items.len()`. Workers pull indices from a shared atomic
/// counter, so uneven per-item cost balances automatically. A panic in `f`
/// propagates after the scope joins.
///
/// ```
/// use cp_runtime::par::par_map_indexed;
/// let squares = par_map_indexed(&[1u64, 2, 3, 4], None, |i, x| (i, x * x));
/// assert_eq!(squares, vec![(0, 1), (1, 4), (2, 9), (3, 16)]);
/// ```
pub fn par_map_indexed<T, U, F>(items: &[T], max_workers: Option<usize>, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let workers = max_workers.unwrap_or_else(default_workers).clamp(1, items.len());
    if workers == 1 {
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }

    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, U)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(i, &items[i])));
                }
                if !local.is_empty() {
                    collected.lock().unwrap_or_else(|e| e.into_inner()).append(&mut local);
                }
            });
        }
    });

    let mut pairs = collected.into_inner().unwrap_or_else(|e| e.into_inner());
    pairs.sort_unstable_by_key(|(i, _)| *i);
    debug_assert_eq!(pairs.len(), items.len());
    pairs.into_iter().map(|(_, u)| u).collect()
}

/// [`par_map_indexed`] without the index.
pub fn par_map<T, U, F>(items: &[T], max_workers: Option<usize>, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed(items, max_workers, |_, item| f(item))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..200).collect();
        let out = par_map_indexed(&items, Some(8), |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn each_item_processed_exactly_once() {
        let calls = AtomicU64::new(0);
        let items: Vec<u32> = (0..97).collect();
        let out = par_map(&items, Some(5), |&x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(calls.load(Ordering::Relaxed), 97);
        assert_eq!(out.iter().copied().collect::<HashSet<_>>().len(), 97);
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u8> = vec![];
        assert!(par_map(&empty, None, |&x| x).is_empty());
        assert_eq!(par_map(&[7u8], Some(16), |&x| x + 1), vec![8]);
    }

    #[test]
    fn worker_cap_of_one_is_sequential() {
        let items: Vec<usize> = (0..10).collect();
        assert_eq!(par_map(&items, Some(1), |&x| x), items);
    }

    #[test]
    #[should_panic] // std::thread::scope re-panics with its own payload
    fn panics_propagate() {
        let items = [1u8, 2, 3];
        let _ = par_map(&items, Some(2), |&x| {
            if x == 2 {
                panic!("worker panic propagates");
            }
            x
        });
    }
}
