//! Lock-free metric primitives for the service layer.
//!
//! Three shapes, mirroring the Prometheus data model the `/metrics`
//! endpoint of `cp-serve` renders:
//!
//! * [`Counter`] — a monotonically increasing `u64`;
//! * [`Gauge`] — a signed value that can go up and down (queue depths);
//! * [`Histogram`] — a fixed-bucket latency histogram with a running sum
//!   and count, rendered as Prometheus cumulative `_bucket` lines.
//!
//! All three are internally atomic so hot paths never take a lock; a
//! `&Counter` can be bumped from any number of worker threads. Snapshots
//! are taken with relaxed loads — metrics are statistics, not
//! synchronization.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can move in both directions (e.g. a queue depth).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a gauge at zero.
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger — a running maximum
    /// (e.g. the worst stall observed since start).
    pub fn set_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Default histogram bucket upper bounds, in microseconds.
///
/// Log-spaced from 100 µs to 10 s — wide enough for an in-process decision
/// (tens of µs) and a cross-network request (ms to s) on one scale.
pub const LATENCY_BUCKETS_MICROS: [u64; 14] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
    2_500_000, 10_000_000,
];

/// A fixed-bucket histogram of microsecond observations.
///
/// Buckets store per-bucket (non-cumulative) counts; [`Histogram::snapshot`]
/// converts to the cumulative form Prometheus expects. The final implicit
/// `+Inf` bucket catches observations beyond the last bound.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    bounds: &'static [u64],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates a histogram with [`LATENCY_BUCKETS_MICROS`] bounds.
    pub fn new() -> Self {
        Histogram::with_bounds(&LATENCY_BUCKETS_MICROS)
    }

    /// Creates a histogram with custom static bounds (must be ascending).
    pub fn with_bounds(bounds: &'static [u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        // One extra slot for +Inf.
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram { buckets, bounds, sum: AtomicU64::new(0), count: AtomicU64::new(0) }
    }

    /// Records one observation of `micros`.
    pub fn observe(&self, micros: u64) {
        let idx = self.bounds.partition_point(|&b| b < micros);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(micros, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, in microseconds.
    pub fn sum_micros(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Cumulative `(upper_bound_micros, count ≤ bound)` pairs; the final
    /// entry is `(u64::MAX, total)`, standing in for `+Inf`.
    pub fn snapshot(&self) -> Vec<(u64, u64)> {
        let mut cumulative = 0u64;
        let mut out = Vec::with_capacity(self.buckets.len());
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            let bound = self.bounds.get(i).copied().unwrap_or(u64::MAX);
            out.push((bound, cumulative));
        }
        out
    }

    /// An approximate quantile (0.0 ≤ q ≤ 1.0) in microseconds, by linear
    /// interpolation inside the owning bucket. Exact sample-based
    /// percentiles belong to the client (the load generator keeps raw
    /// samples); this is the server-side estimate.
    pub fn quantile_micros(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        let mut lower = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if cumulative + n >= rank {
                let upper = self.bounds.get(i).copied().unwrap_or(lower.saturating_mul(2).max(1));
                let into = (rank - cumulative) as f64 / n.max(1) as f64;
                return lower as f64 + into * (upper.saturating_sub(lower)) as f64;
            }
            cumulative += n;
            lower = self.bounds.get(i).copied().unwrap_or(lower);
        }
        lower as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[test]
    fn histogram_buckets_cumulate() {
        let h = Histogram::with_bounds(&[10, 100, 1000]);
        for v in [5, 7, 50, 500, 5000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum_micros(), 5562);
        let snap = h.snapshot();
        assert_eq!(snap, vec![(10, 2), (100, 3), (1000, 4), (u64::MAX, 5)]);
    }

    #[test]
    fn boundary_value_lands_in_its_bucket() {
        // Prometheus buckets are `le` (≤): an observation equal to the
        // bound belongs to that bucket.
        let h = Histogram::with_bounds(&[10, 100]);
        h.observe(10);
        assert_eq!(h.snapshot()[0], (10, 1));
    }

    #[test]
    fn quantiles_are_monotone() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.observe(v * 10);
        }
        let p50 = h.quantile_micros(0.50);
        let p95 = h.quantile_micros(0.95);
        let p99 = h.quantile_micros(0.99);
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(p50 > 1000.0 && p99 <= 10_000_000.0);
        assert_eq!(Histogram::new().quantile_micros(0.5), 0.0);
    }

    #[test]
    fn concurrent_observations_all_counted() {
        let h = std::sync::Arc::new(Histogram::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        h.observe(i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
    }
}
