//! `cp-runtime` — the hermetic platform layer of the CookiePicker
//! reproduction.
//!
//! Every crate in the workspace builds on this one instead of external
//! crates, so the default dependency graph is 100% in-tree and the whole
//! system compiles and tests with `CARGO_NET_OFFLINE=true` on a machine
//! that has never seen a crate registry. The modules mirror the external
//! APIs they replaced closely enough that call sites only swap imports:
//!
//! | module   | replaces           | provides |
//! |----------|--------------------|----------|
//! | [`rng`]  | `rand`             | SplitMix64-seeded xoshiro256++, `Rng` trait (`gen`, `gen_range`, `shuffle`, `sample`) |
//! | [`json`] | `serde`/`serde_json` | [`json::Json`] value, strict parser, fixture-compatible writers, [`json!`] builder macro |
//! | [`par`]  | `crossbeam::scope` | [`par::par_map_indexed`] — ordered scoped fan-out with a worker cap |
//! | [`sync`] | `parking_lot`      | guard-returning `Mutex` / `RwLock` |
//! | [`metrics`] | `prometheus`    | atomic `Counter` / `Gauge` / latency `Histogram` for the service layer |
//! | [`net`]  | `mio`/`epoll` crates | [`net::Poller`] — level-triggered readiness polling (Linux epoll via the libc std links; `Unsupported` elsewhere) |
//!
//! Determinism is the design center: the PRNG stream is pinned by tests,
//! JSON output is byte-stable (sorted keys, shortest float repr), and
//! `par_map_indexed` returns results in input order regardless of thread
//! scheduling — so one seed always produces one report, byte for byte.

pub mod json;
pub mod metrics;
pub mod net;
pub mod par;
pub mod rng;
pub mod sync;
