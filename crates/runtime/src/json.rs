//! Minimal JSON: a value type, a strict parser, compact and pretty writers,
//! and the [`ToJson`]/[`FromJson`] traits the report types implement by
//! hand (no derive machinery).
//!
//! Output formatting deliberately matches what the experiment fixtures in
//! `results/*.json` were produced with: object keys sorted (the map is a
//! `BTreeMap`), pretty output indented two spaces, floats printed as their
//! shortest round-trippable decimal with a `.0` suffix for integral values.
//! Re-serializing a parsed fixture is byte-identical, which the tier-1 suite
//! checks.
//!
//! ```
//! use cp_runtime::json::Json;
//! use cp_runtime::json;
//!
//! let v = json!({ "site": "S1", "probes": 9, "avg_ms": 14.5 });
//! assert_eq!(v.to_string(), r#"{"avg_ms":14.5,"probes":9,"site":"S1"}"#);
//! let back = Json::parse(&v.to_string()).unwrap();
//! assert_eq!(back, v);
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fractional or exponent part.
    Int(i64),
    /// A number with fractional or exponent part.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; `BTreeMap` keeps keys sorted, matching the fixtures.
    Object(BTreeMap<String, Json>),
}

/// Error produced by [`Json::parse`] or a [`FromJson`] conversion.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Byte offset in the input where parsing failed (0 for conversion
    /// errors).
    pub offset: usize,
}

impl JsonError {
    /// A conversion (non-positional) error.
    pub fn msg(message: impl Into<String>) -> Self {
        JsonError { message: message.into(), offset: 0 }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at offset {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Types that can render themselves as a [`Json`] value.
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> Json;
}

/// Types that can be reconstructed from a [`Json`] value.
pub trait FromJson: Sized {
    /// Parses the value, rejecting structurally wrong input.
    fn from_json(value: &Json) -> Result<Self, JsonError>;
}

impl Json {
    /// Creates an empty object (builder entry point).
    pub fn object() -> Json {
        Json::Object(BTreeMap::new())
    }

    /// Builder-style insertion; does nothing on non-objects.
    pub fn set(mut self, key: impl Into<String>, value: impl Into<Json>) -> Json {
        if let Json::Object(map) = &mut self {
            map.insert(key.into(), value.into());
        }
        self
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// Required-member lookup, with a descriptive error for [`FromJson`]
    /// impls.
    pub fn require(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key).ok_or_else(|| JsonError::msg(format!("missing field `{key}`")))
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `i64` (integral floats included).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::Float(f) if f.fract() == 0.0 && f.abs() < 9.2e18 => Some(*f as i64),
            _ => None,
        }
    }

    /// The value as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|i| u64::try_from(i).ok())
    }

    /// The value as `f64` (ints widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Parses a complete JSON document (trailing non-whitespace rejected).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }

    /// Compact rendering (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering: two-space indent, one member per line (the fixture
    /// format).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => write_f64(out, *f),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

/// `Display` renders compactly.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

/// Float policy: non-finite values become `null` (JSON has no NaN/inf);
/// finite values use the shortest round-trippable decimal, with `.0`
/// appended to integral values so a float never reads back as an int.
fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

/// Appends `s` to `out` as a JSON string literal (quotes + escapes) —
/// for hand-rolled hot-path serializers that render without building a
/// [`Json`] tree first.
pub fn escape_into(out: &mut String, s: &str) {
    write_escaped(out, s);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { message: message.to_string(), offset: self.pos }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(_) => {
                    // Bulk-copy up to the next quote, escape, or control
                    // byte. Those stop bytes are all ASCII and UTF-8
                    // continuation bytes are ≥ 0x80, so the chunk ends on
                    // a scalar boundary; the input is a &str, so the
                    // bytes in between are valid UTF-8.
                    let rest = &self.bytes[self.pos..];
                    let stop = rest
                        .iter()
                        .position(|&b| b == b'"' || b == b'\\' || b < 0x20)
                        .unwrap_or(rest.len());
                    if stop == 0 {
                        return Err(self.err("control character in string"));
                    }
                    let chunk = std::str::from_utf8(&rest[..stop])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(chunk);
                    self.pos += stop;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == int_start {
            return Err(self.err("invalid number"));
        }
        // Leading zeros are invalid JSON ("01"), a lone zero is fine.
        if self.bytes[int_start] == b'0' && self.pos - int_start > 1 {
            return Err(self.err("leading zero"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("invalid number"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("invalid number"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>().map(Json::Float).map_err(|_| self.err("number out of range"))
        } else {
            match text.parse::<i64>() {
                Ok(i) => Ok(Json::Int(i)),
                // Integers beyond i64 degrade to float, like most parsers.
                Err(_) => text
                    .parse::<f64>()
                    .map(Json::Float)
                    .map_err(|_| self.err("number out of range")),
            }
        }
    }
}

// ---- Into<Json> conversions used by the builder and the `json!` macro ----

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<&String> for Json {
    fn from(s: &String) -> Json {
        Json::Str(s.clone())
    }
}

impl From<f64> for Json {
    fn from(f: f64) -> Json {
        Json::Float(f)
    }
}

impl From<f32> for Json {
    fn from(f: f32) -> Json {
        Json::Float(f as f64)
    }
}

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Json {
            fn from(i: $t) -> Json {
                Json::Int(i as i64)
            }
        }
    )*};
}
impl_from_int!(i8, i16, i32, i64, u8, u16, u32, usize);

impl From<u64> for Json {
    fn from(i: u64) -> Json {
        match i64::try_from(i) {
            Ok(v) => Json::Int(v),
            Err(_) => Json::Float(i as f64),
        }
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Json> + Clone> From<&[T]> for Json {
    fn from(v: &[T]) -> Json {
        Json::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        match v {
            Some(x) => x.into(),
            None => Json::Null,
        }
    }
}

impl<A: Into<Json> + Clone, B: Into<Json> + Clone> From<&(A, B)> for Json {
    fn from(pair: &(A, B)) -> Json {
        Json::Array(vec![pair.0.clone().into(), pair.1.clone().into()])
    }
}

impl From<&Json> for Json {
    fn from(j: &Json) -> Json {
        j.clone()
    }
}

// ---- FromJson for primitives (building blocks for struct impls) ----

impl FromJson for bool {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value.as_bool().ok_or_else(|| JsonError::msg("expected bool"))
    }
}

impl FromJson for u64 {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value.as_u64().ok_or_else(|| JsonError::msg("expected unsigned integer"))
    }
}

impl FromJson for i64 {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value.as_i64().ok_or_else(|| JsonError::msg("expected integer"))
    }
}

impl FromJson for usize {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        u64::from_json(value)
            .and_then(|v| usize::try_from(v).map_err(|_| JsonError::msg("integer out of range")))
    }
}

impl FromJson for f64 {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value.as_f64().ok_or_else(|| JsonError::msg("expected number"))
    }
}

impl FromJson for String {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value.as_str().map(str::to_string).ok_or_else(|| JsonError::msg("expected string"))
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value
            .as_array()
            .ok_or_else(|| JsonError::msg("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

/// Builds a [`Json`] value with a literal-like syntax.
///
/// Object values and array elements are arbitrary expressions implementing
/// `Into<Json>`; nest objects by nesting `json!` calls.
///
/// ```
/// use cp_runtime::json;
/// let row = json!({
///     "site": format!("S{}", 1),
///     "probes": 9,
///     "nested": json!([1, 2, 3]),
/// });
/// assert_eq!(row.get("probes").and_then(|p| p.as_u64()), Some(9));
/// ```
#[macro_export]
macro_rules! json {
    (null) => { $crate::json::Json::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::json::Json::Array(vec![ $( $crate::json::Json::from($item) ),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {{
        let mut map = ::std::collections::BTreeMap::new();
        $( map.insert($key.to_string(), $crate::json::Json::from($value)); )*
        $crate::json::Json::Object(map)
    }};
    ($other:expr) => { $crate::json::Json::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.to_compact(), "null");
        assert_eq!(Json::Bool(true).to_compact(), "true");
        assert_eq!(Json::Int(-3).to_compact(), "-3");
        assert_eq!(Json::Float(1.0).to_compact(), "1.0");
        assert_eq!(Json::Float(14.776444444444444).to_compact(), "14.776444444444444");
        assert_eq!(Json::Float(f64::NAN).to_compact(), "null");
        assert_eq!(Json::Str("a\"b\\c\nd".into()).to_compact(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn pretty_matches_fixture_style() {
        let v = json!([json!({ "a": 1, "b": 2.5 })]);
        assert_eq!(v.to_pretty(), "[\n  {\n    \"a\": 1,\n    \"b\": 2.5\n  }\n]");
        assert_eq!(Json::Array(vec![]).to_pretty(), "[]");
        assert_eq!(Json::object().to_pretty(), "{}");
    }

    #[test]
    fn keys_are_sorted() {
        let v = json!({ "zeta": 1, "alpha": 2, "mid": 3 });
        assert_eq!(v.to_compact(), r#"{"alpha":2,"mid":3,"zeta":1}"#);
    }

    #[test]
    fn parse_round_trip() {
        let src = r#"{"a":[1,2.5,-3,true,false,null,"x\ny"],"b":{"c":"\u0041\ud83d\ude00"}}"#;
        let v = Json::parse(src).unwrap();
        let re = Json::parse(&v.to_compact()).unwrap();
        assert_eq!(v, re);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str().unwrap(), "A\u{1F600}");
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "not json",
            "{",
            "[1,]",
            "{\"a\":}",
            "01",
            "1.",
            "1e",
            "\"\\x\"",
            "tru",
            "{\"a\":1} extra",
            "[1 2]",
            "\u{1}",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parse_numbers() {
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("0.5").unwrap(), Json::Float(0.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(Json::parse("0").unwrap(), Json::Int(0));
        // Beyond i64 degrades to float.
        assert!(matches!(Json::parse("99999999999999999999").unwrap(), Json::Float(_)));
    }

    #[test]
    fn builder_api() {
        let v = Json::object().set("k", 1).set("s", "x");
        assert_eq!(v.to_compact(), r#"{"k":1,"s":"x"}"#);
        assert_eq!(v.require("k").unwrap(), &Json::Int(1));
        assert!(v.require("missing").is_err());
    }

    #[test]
    fn from_json_primitives() {
        assert_eq!(u64::from_json(&Json::Int(5)).unwrap(), 5);
        assert!(u64::from_json(&Json::Int(-5)).is_err());
        assert_eq!(Option::<u64>::from_json(&Json::Null).unwrap(), None);
        assert_eq!(Vec::<u64>::from_json(&Json::parse("[1,2]").unwrap()).unwrap(), vec![1, 2]);
        assert_eq!(String::from_json(&Json::Str("s".into())).unwrap(), "s");
    }

    #[test]
    fn float_never_reads_back_as_int() {
        let v = Json::Float(3.0);
        let re = Json::parse(&v.to_compact()).unwrap();
        assert_eq!(re, v);
    }

    #[test]
    fn option_and_u64_conversions() {
        assert_eq!(Json::from(None::<u64>), Json::Null);
        assert_eq!(Json::from(Some(3u64)), Json::Int(3));
        assert_eq!(Json::from(u64::MAX), Json::Float(u64::MAX as f64));
    }
}
