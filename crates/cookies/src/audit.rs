//! Jar auditing: privacy-oriented summaries of a cookie jar.
//!
//! This is the user-facing payoff of CookiePicker (§1): show how much
//! long-term tracking surface a jar carries, and how much of it the
//! `useful` marks justify keeping. The lifetime buckets mirror the authors'
//! measurement study (§2).

use std::collections::BTreeMap;

use cp_runtime::json::{Json, ToJson};

use crate::jar::CookieJar;
use crate::time::{SimDuration, SimTime};

/// Lifetime buckets used by the audit (and the measurement study).
pub const LIFETIME_BUCKETS: [(&str, u64); 5] = [
    ("< 1 month", 30),
    ("1-6 months", 180),
    ("6-12 months", 365),
    ("1-10 years", 3_650),
    (">= 10 years", u64::MAX),
];

/// A privacy audit of one cookie jar at an instant.
#[derive(Debug, Clone, PartialEq)]
pub struct JarAudit {
    /// Total live cookies.
    pub total: usize,
    /// Session cookies (no expiry).
    pub session: usize,
    /// Persistent cookies.
    pub persistent: usize,
    /// Persistent cookies marked useful.
    pub useful: usize,
    /// Persistent cookies *not* marked useful — removable tracking surface.
    pub removable: usize,
    /// Persistent cookies whose remaining lifetime is one year or more —
    /// the paper's headline metric.
    pub year_plus: usize,
    /// Remaining-lifetime histogram over [`LIFETIME_BUCKETS`].
    pub lifetime_histogram: Vec<(String, usize)>,
    /// Cookies per domain, sorted by count (descending, then name).
    pub by_domain: Vec<(String, usize)>,
}

impl ToJson for JarAudit {
    fn to_json(&self) -> Json {
        let pairs = |v: &[(String, usize)]| Json::Array(v.iter().map(Json::from).collect());
        Json::object()
            .set("total", self.total)
            .set("session", self.session)
            .set("persistent", self.persistent)
            .set("useful", self.useful)
            .set("removable", self.removable)
            .set("year_plus", self.year_plus)
            .set("lifetime_histogram", pairs(&self.lifetime_histogram))
            .set("by_domain", pairs(&self.by_domain))
    }
}

impl JarAudit {
    /// Fraction of persistent cookies living ≥ 1 year (0 when none).
    pub fn year_plus_share(&self) -> f64 {
        if self.persistent == 0 {
            return 0.0;
        }
        self.year_plus as f64 / self.persistent as f64
    }
}

/// Audits `jar` at time `now`. Expired cookies are ignored.
///
/// ```
/// use cp_cookies::{audit_jar, Cookie, CookieJar, SimDuration, SimTime};
/// let now = SimTime::EPOCH;
/// let mut jar = CookieJar::new();
/// jar.store(Cookie::new("sid", "1", "a.example", now), now); // session
/// jar.store(
///     Cookie::new("trk", "2", "a.example", now).with_expiry(now + SimDuration::from_days(730)),
///     now,
/// );
/// let audit = audit_jar(&jar, now);
/// assert_eq!(audit.total, 2);
/// assert_eq!(audit.session, 1);
/// assert_eq!(audit.year_plus, 1);
/// assert_eq!(audit.removable, 1);
/// ```
pub fn audit_jar(jar: &CookieJar, now: SimTime) -> JarAudit {
    let year = SimDuration::from_days(365);
    let mut session = 0usize;
    let mut persistent = 0usize;
    let mut useful = 0usize;
    let mut year_plus = 0usize;
    let mut histogram: Vec<(String, usize)> =
        LIFETIME_BUCKETS.iter().map(|(l, _)| (l.to_string(), 0)).collect();
    let mut by_domain: BTreeMap<String, usize> = BTreeMap::new();
    let mut total = 0usize;

    for c in jar.iter() {
        if c.is_expired(now) {
            continue;
        }
        total += 1;
        *by_domain.entry(c.domain.clone()).or_default() += 1;
        match c.expires {
            None => session += 1,
            Some(e) => {
                persistent += 1;
                if c.useful() {
                    useful += 1;
                }
                let remaining = e.saturating_since(now);
                if remaining >= year {
                    year_plus += 1;
                }
                let days = remaining.as_millis() / 86_400_000;
                for (i, (_, hi)) in LIFETIME_BUCKETS.iter().enumerate() {
                    if days < *hi {
                        histogram[i].1 += 1;
                        break;
                    }
                }
            }
        }
    }

    let mut by_domain: Vec<(String, usize)> = by_domain.into_iter().collect();
    by_domain.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    JarAudit {
        total,
        session,
        persistent,
        useful,
        removable: persistent - useful,
        year_plus,
        lifetime_histogram: histogram,
        by_domain,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Cookie;

    fn jar_with(cookies: Vec<Cookie>) -> CookieJar {
        let mut jar = CookieJar::new();
        for c in cookies {
            jar.store(c, SimTime::EPOCH);
        }
        jar
    }

    fn persistent(name: &str, domain: &str, days: u64) -> Cookie {
        Cookie::new(name, "v", domain, SimTime::EPOCH)
            .with_expiry(SimTime::EPOCH + SimDuration::from_days(days))
    }

    #[test]
    fn empty_jar() {
        let audit = audit_jar(&CookieJar::new(), SimTime::EPOCH);
        assert_eq!(audit.total, 0);
        assert_eq!(audit.year_plus_share(), 0.0);
        assert!(audit.by_domain.is_empty());
    }

    #[test]
    fn buckets_and_shares() {
        let jar = jar_with(vec![
            persistent("a", "x.example", 7),
            persistent("b", "x.example", 90),
            persistent("c", "x.example", 200),
            persistent("d", "y.example", 400),
            persistent("e", "y.example", 4_000),
        ]);
        let audit = audit_jar(&jar, SimTime::EPOCH);
        assert_eq!(audit.persistent, 5);
        assert_eq!(audit.year_plus, 2);
        assert!((audit.year_plus_share() - 0.4).abs() < 1e-12);
        let counts: Vec<usize> = audit.lifetime_histogram.iter().map(|(_, c)| *c).collect();
        assert_eq!(counts, vec![1, 1, 1, 1, 1]);
    }

    #[test]
    fn useful_marks_split_removable() {
        let mut jar = jar_with(vec![
            persistent("keep", "x.example", 400),
            persistent("drop", "x.example", 400),
        ]);
        jar.mark_useful("x.example", &["keep"]);
        let audit = audit_jar(&jar, SimTime::EPOCH);
        assert_eq!(audit.useful, 1);
        assert_eq!(audit.removable, 1);
    }

    #[test]
    fn expired_cookies_ignored() {
        let jar = jar_with(vec![persistent("old", "x.example", 10)]);
        let later = SimTime::EPOCH + SimDuration::from_days(20);
        let audit = audit_jar(&jar, later);
        assert_eq!(audit.total, 0);
    }

    #[test]
    fn domains_sorted_by_count() {
        let jar = jar_with(vec![
            persistent("a", "big.example", 400),
            persistent("b", "big.example", 400),
            persistent("c", "small.example", 400),
        ]);
        let audit = audit_jar(&jar, SimTime::EPOCH);
        assert_eq!(audit.by_domain[0], ("big.example".to_string(), 2));
        assert_eq!(audit.by_domain[1], ("small.example".to_string(), 1));
    }

    #[test]
    fn remaining_lifetime_is_relative_to_now() {
        // A 2-year cookie inspected after 1.5 years has <1 year left.
        let jar = jar_with(vec![persistent("a", "x.example", 730)]);
        let later = SimTime::EPOCH + SimDuration::from_days(548);
        let audit = audit_jar(&jar, later);
        assert_eq!(audit.year_plus, 0);
        assert_eq!(audit.persistent, 1);
    }
}
