//! Browser cookie policies.
//!
//! §2 of the paper lays out the policy landscape: browsers can already block
//! third-party cookies and most users should enable first-party session
//! cookies; the open problem is first-party **persistent** cookies.
//! [`CookiePolicy::UsefulOnly`] is the CookiePicker answer: send such a
//! cookie only once the FORCUM process has marked it useful.

use cp_runtime::json::{FromJson, Json, JsonError, ToJson};

use crate::model::{Cookie, Party};

/// A cookie acceptance/transmission policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CookiePolicy {
    /// Accept and send everything (browser default of the era).
    #[default]
    AcceptAll,
    /// Block third-party cookies entirely; accept all first-party cookies.
    BlockThirdParty,
    /// Block all cookies.
    BlockAll,
    /// The CookiePicker policy (§3): block third-party cookies, always allow
    /// first-party session cookies, and send first-party **persistent**
    /// cookies only when their `useful` mark is set. Storage is still
    /// allowed so the FORCUM process can observe and test them.
    UsefulOnly,
}

impl CookiePolicy {
    /// Whether a freshly received cookie should be stored in the jar.
    pub fn should_store(self, cookie: &Cookie, party: Party) -> bool {
        let _ = cookie;
        match self {
            CookiePolicy::AcceptAll => true,
            CookiePolicy::BlockThirdParty | CookiePolicy::UsefulOnly => party == Party::First,
            CookiePolicy::BlockAll => false,
        }
    }

    /// The policy's canonical name (also its JSON encoding).
    pub fn name(self) -> &'static str {
        match self {
            CookiePolicy::AcceptAll => "AcceptAll",
            CookiePolicy::BlockThirdParty => "BlockThirdParty",
            CookiePolicy::BlockAll => "BlockAll",
            CookiePolicy::UsefulOnly => "UsefulOnly",
        }
    }

    /// Whether a stored cookie should be attached to an outgoing request.
    pub fn should_send(self, cookie: &Cookie, party: Party) -> bool {
        match self {
            CookiePolicy::AcceptAll => true,
            CookiePolicy::BlockThirdParty => party == Party::First,
            CookiePolicy::BlockAll => false,
            CookiePolicy::UsefulOnly => {
                party == Party::First && (!cookie.is_persistent() || cookie.useful())
            }
        }
    }
}

impl ToJson for CookiePolicy {
    fn to_json(&self) -> Json {
        Json::from(self.name())
    }
}

impl FromJson for CookiePolicy {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value.as_str() {
            Some("AcceptAll") => Ok(CookiePolicy::AcceptAll),
            Some("BlockThirdParty") => Ok(CookiePolicy::BlockThirdParty),
            Some("BlockAll") => Ok(CookiePolicy::BlockAll),
            Some("UsefulOnly") => Ok(CookiePolicy::UsefulOnly),
            _ => Err(JsonError::msg("unknown cookie policy")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn session() -> Cookie {
        Cookie::new("s", "1", "a.com", SimTime::EPOCH)
    }

    fn persistent() -> Cookie {
        session().with_expiry(SimTime::from_secs(1_000_000))
    }

    #[test]
    fn accept_all() {
        let p = CookiePolicy::AcceptAll;
        assert!(p.should_store(&session(), Party::Third));
        assert!(p.should_send(&persistent(), Party::Third));
    }

    #[test]
    fn block_third_party() {
        let p = CookiePolicy::BlockThirdParty;
        assert!(p.should_store(&session(), Party::First));
        assert!(!p.should_store(&session(), Party::Third));
        assert!(p.should_send(&persistent(), Party::First));
        assert!(!p.should_send(&persistent(), Party::Third));
    }

    #[test]
    fn block_all() {
        let p = CookiePolicy::BlockAll;
        assert!(!p.should_store(&session(), Party::First));
        assert!(!p.should_send(&session(), Party::First));
    }

    #[test]
    fn useful_only_gates_persistent_cookies() {
        let p = CookiePolicy::UsefulOnly;
        // Session cookies always pass (first-party).
        assert!(p.should_send(&session(), Party::First));
        // Unmarked persistent cookies are withheld.
        let c = persistent();
        assert!(!p.should_send(&c, Party::First));
        // Marked useful → sent.
        let mut c = persistent();
        c.mark_useful();
        assert!(p.should_send(&c, Party::First));
        // Third-party never.
        assert!(!p.should_send(&c, Party::Third));
        // Storage of first-party persistents allowed (FORCUM needs them).
        assert!(p.should_store(&persistent(), Party::First));
        assert!(!p.should_store(&persistent(), Party::Third));
    }

    #[test]
    fn default_is_accept_all() {
        assert_eq!(CookiePolicy::default(), CookiePolicy::AcceptAll);
    }
}
