//! `Set-Cookie` and `Cookie` header codecs.

use std::fmt;

use crate::date::parse_http_date;
use crate::model::Cookie;
use crate::time::{SimDuration, SimTime};

/// Error returned by [`parse_set_cookie`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseCookieError {
    /// The header carried no `name=value` pair.
    MissingPair,
    /// The cookie name was empty or contained separators.
    InvalidName(
        /// The offending name.
        String,
    ),
    /// A `Domain` attribute did not domain-match the request host — the
    /// browser must reject such cookies.
    DomainMismatch {
        /// The `Domain` attribute value.
        attribute: String,
        /// The host the response came from.
        host: String,
    },
}

impl fmt::Display for ParseCookieError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseCookieError::MissingPair => {
                f.write_str("set-cookie header has no name=value pair")
            }
            ParseCookieError::InvalidName(n) => write!(f, "invalid cookie name {n:?}"),
            ParseCookieError::DomainMismatch { attribute, host } => {
                write!(f, "domain attribute {attribute:?} does not match request host {host:?}")
            }
        }
    }
}

impl std::error::Error for ParseCookieError {}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.bytes().all(|b| b.is_ascii_graphic() && !matches!(b, b';' | b',' | b'=' | b'"'))
}

/// Parses a `Set-Cookie` header received from `host` at time `now`.
///
/// Follows the pragmatic rules of 2007-era browsers:
///
/// * `Max-Age` (RFC 2109) takes precedence over `Expires` (Netscape);
/// * a valid `Domain` attribute widens matching to subdomains, but must
///   domain-match the responding host (otherwise the cookie is rejected);
/// * unknown attributes are ignored;
/// * a `Max-Age` of zero (or a past `Expires`) still produces a cookie — the
///   jar interprets storing an expired cookie as deletion.
///
/// # Errors
///
/// Returns [`ParseCookieError`] when there is no `name=value` pair, the name
/// is malformed, or the `Domain` attribute does not cover `host`.
///
/// ```
/// use cp_cookies::{parse_set_cookie, SimTime};
/// let c = parse_set_cookie(
///     "sid=abc123; Path=/; HttpOnly; Domain=.example.com",
///     "www.example.com",
///     SimTime::EPOCH,
/// ).unwrap();
/// assert_eq!(c.name, "sid");
/// assert!(c.http_only);
/// assert!(!c.host_only);
/// assert!(c.domain_matches("shop.example.com"));
/// ```
pub fn parse_set_cookie(
    header: &str,
    host: &str,
    now: SimTime,
) -> Result<Cookie, ParseCookieError> {
    let mut parts = header.split(';');
    let pair = parts.next().ok_or(ParseCookieError::MissingPair)?;
    let (name, value) = match pair.split_once('=') {
        Some((n, v)) => (n.trim(), v.trim()),
        None => return Err(ParseCookieError::MissingPair),
    };
    if !valid_name(name) {
        return Err(ParseCookieError::InvalidName(name.to_string()));
    }
    let mut cookie = Cookie::new(name, value.trim_matches('"'), host, now);

    let mut max_age: Option<i64> = None;
    let mut expires: Option<SimTime> = None;

    for attr in parts {
        let attr = attr.trim();
        let (key, val) = match attr.split_once('=') {
            Some((k, v)) => (k.trim(), v.trim()),
            None => (attr, ""),
        };
        if key.eq_ignore_ascii_case("expires") {
            expires = parse_http_date(val);
        } else if key.eq_ignore_ascii_case("max-age") {
            max_age = val.parse::<i64>().ok();
        } else if key.eq_ignore_ascii_case("domain") {
            let dom = val.trim_start_matches('.').to_ascii_lowercase();
            if dom.is_empty() {
                continue;
            }
            let host_lc = host.to_ascii_lowercase();
            let matches = host_lc == dom
                || (host_lc.ends_with(&dom)
                    && host_lc.as_bytes().get(host_lc.len() - dom.len() - 1) == Some(&b'.'));
            if !matches {
                return Err(ParseCookieError::DomainMismatch {
                    attribute: val.to_string(),
                    host: host.to_string(),
                });
            }
            cookie = cookie.with_domain_attribute(dom);
        } else if key.eq_ignore_ascii_case("path") {
            if val.starts_with('/') {
                cookie.path = val.to_string();
            }
        } else if key.eq_ignore_ascii_case("secure") {
            cookie.secure = true;
        } else if key.eq_ignore_ascii_case("httponly") {
            cookie.http_only = true;
        }
        // Unknown attributes (Version, Comment, SameSite, …) are ignored.
    }

    cookie.expires = match max_age {
        Some(age) if age <= 0 => Some(now), // immediate expiry = deletion
        Some(age) => Some(now + SimDuration::from_secs(age as u64)),
        None => expires,
    };
    Ok(cookie)
}

/// Parses a request `Cookie` header into `(name, value)` pairs — the server
/// side of the exchange.
///
/// ```
/// use cp_cookies::parse_cookie_header;
/// let pairs = parse_cookie_header("a=1; b=two; empty=");
/// assert_eq!(pairs, vec![
///     ("a".to_string(), "1".to_string()),
///     ("b".to_string(), "two".to_string()),
///     ("empty".to_string(), String::new()),
/// ]);
/// ```
pub fn parse_cookie_header(header: &str) -> Vec<(String, String)> {
    header
        .split(';')
        .filter_map(|pair| {
            let pair = pair.trim();
            if pair.is_empty() {
                return None;
            }
            match pair.split_once('=') {
                Some((n, v)) => Some((n.trim().to_string(), v.trim().to_string())),
                None => Some((pair.to_string(), String::new())),
            }
        })
        .collect()
}

/// Encodes cookies into a request `Cookie` header value.
///
/// ```
/// use cp_cookies::{encode_cookie_header, Cookie, SimTime};
/// let a = Cookie::new("a", "1", "x.com", SimTime::EPOCH);
/// let b = Cookie::new("b", "2", "x.com", SimTime::EPOCH);
/// assert_eq!(encode_cookie_header([&a, &b]), "a=1; b=2");
/// ```
pub fn encode_cookie_header<'a>(cookies: impl IntoIterator<Item = &'a Cookie>) -> String {
    cookies.into_iter().map(|c| format!("{}={}", c.name, c.value)).collect::<Vec<_>>().join("; ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::date::civil_to_sim;

    const HOST: &str = "www.shop.example";

    #[test]
    fn minimal_pair() {
        let c = parse_set_cookie("k=v", HOST, SimTime::EPOCH).unwrap();
        assert_eq!(c.name, "k");
        assert_eq!(c.value, "v");
        assert_eq!(c.domain, HOST);
        assert!(c.host_only);
        assert_eq!(c.path, "/");
        assert!(!c.is_persistent());
    }

    #[test]
    fn expires_attribute() {
        let c =
            parse_set_cookie("k=v; Expires=Tue, 01 Jan 2008 00:00:00 GMT", HOST, SimTime::EPOCH)
                .unwrap();
        assert_eq!(c.expires, Some(civil_to_sim(2008, 1, 1, 0, 0, 0)));
    }

    #[test]
    fn max_age_beats_expires() {
        let c = parse_set_cookie(
            "k=v; Expires=Tue, 01 Jan 2008 00:00:00 GMT; Max-Age=60",
            HOST,
            SimTime::from_secs(10),
        )
        .unwrap();
        assert_eq!(c.expires, Some(SimTime::from_secs(70)));
    }

    #[test]
    fn max_age_zero_is_immediate_expiry() {
        let now = SimTime::from_secs(5);
        let c = parse_set_cookie("k=v; Max-Age=0", HOST, now).unwrap();
        assert!(c.is_expired(now));
        let c = parse_set_cookie("k=v; Max-Age=-1", HOST, now).unwrap();
        assert!(c.is_expired(now));
    }

    #[test]
    fn domain_attribute_accepted_when_matching() {
        let c = parse_set_cookie("k=v; Domain=shop.example", HOST, SimTime::EPOCH).unwrap();
        assert!(!c.host_only);
        assert_eq!(c.domain, "shop.example");
        // Leading dot tolerated (Netscape style).
        let c = parse_set_cookie("k=v; Domain=.shop.example", HOST, SimTime::EPOCH).unwrap();
        assert_eq!(c.domain, "shop.example");
    }

    #[test]
    fn foreign_domain_rejected() {
        let err = parse_set_cookie("k=v; Domain=evil.net", HOST, SimTime::EPOCH).unwrap_err();
        assert!(matches!(err, ParseCookieError::DomainMismatch { .. }));
        // Suffix without label boundary must also be rejected.
        let err = parse_set_cookie("k=v; Domain=hop.example", HOST, SimTime::EPOCH);
        assert!(err.is_err());
    }

    #[test]
    fn flags_and_path() {
        let c =
            parse_set_cookie("k=v; Secure; HttpOnly; Path=/account", HOST, SimTime::EPOCH).unwrap();
        assert!(c.secure);
        assert!(c.http_only);
        assert_eq!(c.path, "/account");
        // Non-absolute path ignored.
        let c = parse_set_cookie("k=v; Path=relative", HOST, SimTime::EPOCH).unwrap();
        assert_eq!(c.path, "/");
    }

    #[test]
    fn unknown_attributes_ignored() {
        let c = parse_set_cookie("k=v; Version=1; Comment=hi; SameSite=Lax", HOST, SimTime::EPOCH)
            .unwrap();
        assert_eq!(c.name, "k");
    }

    #[test]
    fn quoted_value_unwrapped() {
        let c = parse_set_cookie("k=\"quoted\"", HOST, SimTime::EPOCH).unwrap();
        assert_eq!(c.value, "quoted");
    }

    #[test]
    fn value_with_equals_preserved() {
        let c = parse_set_cookie("k=a=b=c", HOST, SimTime::EPOCH).unwrap();
        assert_eq!(c.value, "a=b=c");
    }

    #[test]
    fn bad_names_rejected() {
        assert!(parse_set_cookie("=v", HOST, SimTime::EPOCH).is_err());
        assert!(parse_set_cookie("no pair at all", HOST, SimTime::EPOCH).is_err());
        assert!(parse_set_cookie("ba d=v", HOST, SimTime::EPOCH).is_err());
    }

    #[test]
    fn cookie_header_round_trip() {
        let a = Cookie::new("a", "1", HOST, SimTime::EPOCH);
        let b = Cookie::new("b", "2", HOST, SimTime::EPOCH);
        let header = encode_cookie_header([&a, &b]);
        let pairs = parse_cookie_header(&header);
        assert_eq!(pairs, vec![("a".into(), "1".into()), ("b".into(), "2".into())]);
    }

    #[test]
    fn cookie_header_edge_cases() {
        assert!(parse_cookie_header("").is_empty());
        assert_eq!(parse_cookie_header("lone"), vec![("lone".to_string(), String::new())]);
        assert_eq!(parse_cookie_header(" ; ; a=1 ; "), vec![("a".to_string(), "1".to_string())]);
    }
}
