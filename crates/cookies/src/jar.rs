//! The browser cookie jar.
//!
//! Stores [`Cookie`] records with RFC 6265-style replacement and matching,
//! plus the CookiePicker-specific operations: marking cookies useful,
//! querying the useful/useless split per site, and removing useless
//! persistent cookies once a site's training stabilizes (§3.3: "those
//! disabled useless cookies will be removed from the Web browser's cookie
//! jar").

use cp_runtime::json::{FromJson, Json, JsonError, ToJson};

use crate::model::Cookie;
use crate::time::SimTime;

/// Default cap on cookies stored per domain (Firefox 1.5 used 50).
pub const MAX_PER_DOMAIN: usize = 50;
/// Default cap on total cookies (Firefox 1.5 used 1000; we allow more for
/// large simulated populations).
pub const MAX_TOTAL: usize = 10_000;

/// A browser cookie jar.
///
/// ```
/// use cp_cookies::{Cookie, CookieJar, SimTime};
/// let now = SimTime::EPOCH;
/// let mut jar = CookieJar::new();
/// jar.store(Cookie::new("a", "1", "x.com", now), now);
/// jar.store(Cookie::new("b", "2", "y.com", now), now);
/// assert_eq!(jar.len(), 2);
/// assert_eq!(jar.cookies_for("x.com", "/", now).len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CookieJar {
    cookies: Vec<Cookie>,
}

impl ToJson for CookieJar {
    fn to_json(&self) -> Json {
        Json::object()
            .set("cookies", Json::Array(self.cookies.iter().map(ToJson::to_json).collect()))
    }
}

impl FromJson for CookieJar {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(CookieJar { cookies: Vec::<Cookie>::from_json(value.require("cookies")?)? })
    }
}

impl CookieJar {
    /// Creates an empty jar.
    pub fn new() -> Self {
        CookieJar::default()
    }

    /// Number of stored cookies (including expired ones not yet purged).
    pub fn len(&self) -> usize {
        self.cookies.len()
    }

    /// Whether the jar is empty.
    pub fn is_empty(&self) -> bool {
        self.cookies.is_empty()
    }

    /// Stores `cookie`, replacing any cookie with the same (name, domain,
    /// path) identity. Storing an already-expired cookie **deletes** the
    /// matching stored cookie (the `Max-Age=0` deletion idiom).
    ///
    /// Returns the replaced cookie, if any. The `useful` mark of a replaced
    /// cookie is inherited by its replacement (the mark belongs to the
    /// cookie identity, not the value — re-issuing a cookie must not reset
    /// training).
    pub fn store(&mut self, mut cookie: Cookie, now: SimTime) -> Option<Cookie> {
        let existing = self.cookies.iter().position(|c| c.identity() == cookie.identity());
        if cookie.is_expired(now) {
            return existing.map(|i| self.cookies.remove(i));
        }
        match existing {
            Some(i) => {
                if self.cookies[i].useful() {
                    cookie.mark_useful();
                }
                cookie.created = self.cookies[i].created;
                Some(std::mem::replace(&mut self.cookies[i], cookie))
            }
            None => {
                self.evict_if_needed(&cookie, now);
                self.cookies.push(cookie);
                None
            }
        }
    }

    fn evict_if_needed(&mut self, incoming: &Cookie, now: SimTime) {
        self.purge_expired(now);
        // Per-domain cap: evict the oldest cookie of the same domain.
        let domain_count = self.cookies.iter().filter(|c| c.domain == incoming.domain).count();
        if domain_count >= MAX_PER_DOMAIN {
            if let Some(i) = self
                .cookies
                .iter()
                .enumerate()
                .filter(|(_, c)| c.domain == incoming.domain)
                .min_by_key(|(_, c)| c.created)
                .map(|(i, _)| i)
            {
                self.cookies.remove(i);
            }
        }
        // Global cap: evict the globally oldest.
        if self.cookies.len() >= MAX_TOTAL {
            if let Some(i) =
                self.cookies.iter().enumerate().min_by_key(|(_, c)| c.created).map(|(i, _)| i)
            {
                self.cookies.remove(i);
            }
        }
    }

    /// Removes expired cookies.
    pub fn purge_expired(&mut self, now: SimTime) {
        self.cookies.retain(|c| !c.is_expired(now));
    }

    /// The cookies to attach to a request for `host`/`path` at `now`, in
    /// RFC 6265 order: longer paths first, then older creation time first.
    pub fn cookies_for(&self, host: &str, path: &str, now: SimTime) -> Vec<&Cookie> {
        let mut out: Vec<&Cookie> =
            self.cookies.iter().filter(|c| c.matches_request(host, path, now)).collect();
        out.sort_by(|a, b| b.path.len().cmp(&a.path.len()).then(a.created.cmp(&b.created)));
        out
    }

    /// Iterates over all stored cookies.
    pub fn iter(&self) -> impl Iterator<Item = &Cookie> {
        self.cookies.iter()
    }

    /// All cookies whose domain matches `host` (any path), unexpired.
    pub fn cookies_for_site(&self, host: &str, now: SimTime) -> Vec<&Cookie> {
        self.cookies.iter().filter(|c| !c.is_expired(now) && c.domain_matches(host)).collect()
    }

    /// Marks the named cookies of `host` as useful (FORCUM step 5 /
    /// backward error recovery). Returns how many marks changed.
    pub fn mark_useful(&mut self, host: &str, names: &[&str]) -> usize {
        let mut changed = 0;
        for c in &mut self.cookies {
            if c.domain_matches(host) && names.contains(&c.name.as_str()) && !c.useful() {
                c.mark_useful();
                changed += 1;
            }
        }
        changed
    }

    /// Removes the **useless persistent** cookies of `host`: persistent
    /// cookies still unmarked after training (§3.3). Returns the removed
    /// cookies.
    pub fn remove_useless_persistent(&mut self, host: &str) -> Vec<Cookie> {
        let mut removed = Vec::new();
        let mut i = 0;
        while i < self.cookies.len() {
            let c = &self.cookies[i];
            if c.domain_matches(host) && c.is_persistent() && !c.useful() {
                removed.push(self.cookies.remove(i));
            } else {
                i += 1;
            }
        }
        removed
    }

    /// Serializes the jar (including `useful` marks) to JSON — the
    /// equivalent of Firefox persisting `cookies.txt` across restarts.
    ///
    /// ```
    /// use cp_cookies::{Cookie, CookieJar, SimTime};
    /// let mut jar = CookieJar::new();
    /// jar.store(Cookie::new("a", "1", "x.com", SimTime::EPOCH), SimTime::EPOCH);
    /// let restored = CookieJar::from_json(&jar.to_json()).unwrap();
    /// assert_eq!(restored.len(), 1);
    /// ```
    pub fn to_json(&self) -> String {
        ToJson::to_json(self).to_compact()
    }

    /// Restores a jar from [`to_json`](CookieJar::to_json) output.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] for malformed input.
    pub fn from_json(json: &str) -> Result<Self, JsonError> {
        FromJson::from_json(&Json::parse(json)?)
    }

    /// Convenience counters for a site: `(persistent, marked_useful)`.
    pub fn site_stats(&self, host: &str, now: SimTime) -> (usize, usize) {
        let site = self.cookies_for_site(host, now);
        let persistent = site.iter().filter(|c| c.is_persistent()).count();
        let useful = site.iter().filter(|c| c.is_persistent() && c.useful()).count();
        (persistent, useful)
    }
}

impl<'a> IntoIterator for &'a CookieJar {
    type Item = &'a Cookie;
    type IntoIter = std::slice::Iter<'a, Cookie>;

    fn into_iter(self) -> Self::IntoIter {
        self.cookies.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    const HOST: &str = "shop.example";

    fn persistent(name: &str, now: SimTime) -> Cookie {
        Cookie::new(name, "v", HOST, now).with_expiry(now + SimDuration::from_days(365))
    }

    #[test]
    fn store_and_retrieve() {
        let now = SimTime::EPOCH;
        let mut jar = CookieJar::new();
        jar.store(Cookie::new("a", "1", HOST, now), now);
        let got = jar.cookies_for(HOST, "/", now);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].value, "1");
    }

    #[test]
    fn replacement_keeps_identity() {
        let now = SimTime::EPOCH;
        let mut jar = CookieJar::new();
        jar.store(Cookie::new("a", "1", HOST, now), now);
        let replaced = jar.store(Cookie::new("a", "2", HOST, now), now);
        assert_eq!(replaced.unwrap().value, "1");
        assert_eq!(jar.len(), 1);
        assert_eq!(jar.cookies_for(HOST, "/", now)[0].value, "2");
    }

    #[test]
    fn replacement_inherits_useful_mark_and_created() {
        let t0 = SimTime::EPOCH;
        let t1 = SimTime::from_secs(100);
        let mut jar = CookieJar::new();
        jar.store(persistent("a", t0), t0);
        jar.mark_useful(HOST, &["a"]);
        jar.store(persistent("a", t1), t1);
        let c = jar.cookies_for(HOST, "/", t1)[0];
        assert!(c.useful(), "re-issued cookie must keep its training mark");
        assert_eq!(c.created, t0, "creation time is the first store");
    }

    #[test]
    fn same_name_different_path_coexist() {
        let now = SimTime::EPOCH;
        let mut jar = CookieJar::new();
        jar.store(Cookie::new("a", "root", HOST, now), now);
        jar.store(Cookie::new("a", "deep", HOST, now).with_path("/x"), now);
        assert_eq!(jar.len(), 2);
        // Longer path sorts first.
        let got = jar.cookies_for(HOST, "/x/y", now);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].value, "deep");
        assert_eq!(got[1].value, "root");
    }

    #[test]
    fn expired_store_deletes() {
        let now = SimTime::from_secs(100);
        let mut jar = CookieJar::new();
        jar.store(persistent("a", now), now);
        assert_eq!(jar.len(), 1);
        // Max-Age=0 style: expires == now.
        let deletion = Cookie::new("a", "", HOST, now).with_expiry(now);
        jar.store(deletion, now);
        assert_eq!(jar.len(), 0);
    }

    #[test]
    fn expired_cookies_not_sent_and_purged() {
        let t0 = SimTime::EPOCH;
        let mut jar = CookieJar::new();
        jar.store(Cookie::new("a", "1", HOST, t0).with_expiry(SimTime::from_secs(10)), t0);
        let later = SimTime::from_secs(20);
        assert!(jar.cookies_for(HOST, "/", later).is_empty());
        jar.purge_expired(later);
        assert_eq!(jar.len(), 0);
    }

    #[test]
    fn domain_isolation() {
        let now = SimTime::EPOCH;
        let mut jar = CookieJar::new();
        jar.store(Cookie::new("a", "1", "x.com", now), now);
        jar.store(Cookie::new("a", "1", "y.com", now), now);
        assert_eq!(jar.cookies_for("x.com", "/", now).len(), 1);
        assert_eq!(jar.cookies_for_site("y.com", now).len(), 1);
    }

    #[test]
    fn mark_useful_and_stats() {
        let now = SimTime::EPOCH;
        let mut jar = CookieJar::new();
        jar.store(persistent("a", now), now);
        jar.store(persistent("b", now), now);
        jar.store(Cookie::new("sess", "1", HOST, now), now);
        assert_eq!(jar.site_stats(HOST, now), (2, 0));
        assert_eq!(jar.mark_useful(HOST, &["a"]), 1);
        assert_eq!(jar.mark_useful(HOST, &["a"]), 0, "already marked");
        assert_eq!(jar.site_stats(HOST, now), (2, 1));
    }

    #[test]
    fn remove_useless_persistent_spares_useful_and_session() {
        let now = SimTime::EPOCH;
        let mut jar = CookieJar::new();
        jar.store(persistent("useful", now), now);
        jar.store(persistent("useless", now), now);
        jar.store(Cookie::new("sess", "1", HOST, now), now);
        jar.mark_useful(HOST, &["useful"]);
        let removed = jar.remove_useless_persistent(HOST);
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].name, "useless");
        assert_eq!(jar.len(), 2);
    }

    #[test]
    fn json_round_trip_preserves_marks() {
        let now = SimTime::EPOCH;
        let mut jar = CookieJar::new();
        jar.store(persistent("a", now), now);
        jar.store(persistent("b", now), now);
        jar.mark_useful(HOST, &["a"]);
        let restored = CookieJar::from_json(&jar.to_json()).unwrap();
        assert_eq!(restored.len(), 2);
        assert!(restored.iter().find(|c| c.name == "a").unwrap().useful());
        assert!(!restored.iter().find(|c| c.name == "b").unwrap().useful());
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(CookieJar::from_json("not json").is_err());
        assert!(CookieJar::from_json("{\"wrong\": true}").is_err());
    }

    #[test]
    fn per_domain_eviction() {
        let mut jar = CookieJar::new();
        for i in 0..(MAX_PER_DOMAIN + 5) {
            let t = SimTime::from_secs(i as u64);
            jar.store(Cookie::new(format!("c{i}"), "v", HOST, t), t);
        }
        let now = SimTime::from_secs(1_000);
        assert!(jar.cookies_for_site(HOST, now).len() <= MAX_PER_DOMAIN);
        // The oldest were evicted.
        assert!(!jar.iter().any(|c| c.name == "c0"));
    }
}
