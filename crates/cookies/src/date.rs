//! HTTP date parsing and formatting (the three legacy formats).
//!
//! Cookie `Expires` attributes on the 2007-era Web used RFC 1123
//! (`Sun, 06 Nov 1994 08:49:37 GMT`), RFC 850
//! (`Sunday, 06-Nov-94 08:49:37 GMT`) or asctime
//! (`Sun Nov  6 08:49:37 1994`). This module converts between those forms
//! and [`SimTime`], whose epoch the experiments anchor at
//! **2007-01-01 00:00:00 UTC**. Dates before the epoch saturate to
//! [`SimTime::EPOCH`] (i.e. "already expired").

use crate::time::SimTime;

/// Calendar year of the simulation epoch.
pub const EPOCH_YEAR: i64 = 2007;

const MONTHS: [&str; 12] =
    ["Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"];
const WEEKDAYS: [&str; 7] = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"];

/// Days from civil date to the proleptic-Gregorian day number
/// (Howard Hinnant's `days_from_civil`), relative to 1970-01-01.
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m as i64 + 9) % 12; // Mar=0
    let doy = (153 * mp + 2) / 5 + d as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

/// Inverse of [`days_from_civil`].
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

fn epoch_day() -> i64 {
    days_from_civil(EPOCH_YEAR, 1, 1)
}

/// Converts a UTC calendar date-time into simulated time.
///
/// Returns [`SimTime::EPOCH`] for instants before the simulation epoch.
///
/// ```
/// use cp_cookies::date::civil_to_sim;
/// use cp_cookies::SimTime;
/// assert_eq!(civil_to_sim(2007, 1, 1, 0, 0, 0), SimTime::EPOCH);
/// assert_eq!(civil_to_sim(2007, 1, 2, 0, 0, 0).as_secs(), 86_400);
/// assert_eq!(civil_to_sim(1999, 12, 31, 23, 59, 59), SimTime::EPOCH);
/// ```
pub fn civil_to_sim(year: i64, month: u32, day: u32, hour: u32, min: u32, sec: u32) -> SimTime {
    let days = days_from_civil(year, month, day) - epoch_day();
    let secs = days * 86_400 + hour as i64 * 3_600 + min as i64 * 60 + sec as i64;
    if secs <= 0 {
        SimTime::EPOCH
    } else {
        SimTime::from_secs(secs as u64)
    }
}

/// Converts simulated time back into a UTC calendar date-time
/// `(year, month, day, hour, minute, second)`.
pub fn sim_to_civil(t: SimTime) -> (i64, u32, u32, u32, u32, u32) {
    let total_secs = t.as_secs() as i64;
    let days = total_secs.div_euclid(86_400) + epoch_day();
    let rem = total_secs.rem_euclid(86_400);
    let (y, m, d) = civil_from_days(days);
    ((y), m, d, (rem / 3_600) as u32, ((rem % 3_600) / 60) as u32, (rem % 60) as u32)
}

/// Formats an instant as an RFC 1123 date (`Tue, 02 Jan 2007 03:04:05 GMT`).
pub fn format_http_date(t: SimTime) -> String {
    let (y, m, d, hh, mm, ss) = sim_to_civil(t);
    let day_number = days_from_civil(y, m, d);
    // 1970-01-01 was a Thursday (weekday index 3 with Mon=0).
    let weekday = (day_number.rem_euclid(7) + 3) % 7;
    format!(
        "{}, {:02} {} {} {:02}:{:02}:{:02} GMT",
        WEEKDAYS[weekday as usize],
        d,
        MONTHS[(m - 1) as usize],
        y,
        hh,
        mm,
        ss
    )
}

fn month_from_name(name: &str) -> Option<u32> {
    MONTHS.iter().position(|m| m.eq_ignore_ascii_case(name)).map(|p| p as u32 + 1)
}

/// Parses any of the three legacy HTTP date formats into simulated time.
///
/// Returns `None` for unrecognized input. Two-digit RFC 850 years are
/// resolved with the usual pivot: `00..=69` → 2000s, `70..=99` → 1900s.
///
/// ```
/// use cp_cookies::date::{parse_http_date, civil_to_sim};
/// let t = parse_http_date("Tue, 02 Jan 2007 00:00:00 GMT").unwrap();
/// assert_eq!(t, civil_to_sim(2007, 1, 2, 0, 0, 0));
/// assert!(parse_http_date("Tuesday, 02-Jan-07 00:00:00 GMT").is_some());
/// assert!(parse_http_date("Tue Jan  2 00:00:00 2007").is_some());
/// assert!(parse_http_date("not a date").is_none());
/// ```
pub fn parse_http_date(s: &str) -> Option<SimTime> {
    let s = s.trim();
    let parts: Vec<&str> = s.split_whitespace().collect();
    // asctime: "Tue Jan  2 00:00:00 2007" → 5 tokens, second is a month.
    if parts.len() == 5 && month_from_name(parts[1]).is_some() {
        let month = month_from_name(parts[1])?;
        let day: u32 = parts[2].parse().ok()?;
        let (h, m, sec) = parse_clock(parts[3])?;
        let year: i64 = parts[4].parse().ok()?;
        return Some(civil_to_sim(year, month, day, h, m, sec));
    }
    // RFC 1123: "Tue, 02 Jan 2007 00:00:00 GMT" → 6 tokens.
    if parts.len() >= 6 && parts[0].ends_with(',') && !parts[1].contains('-') {
        let day: u32 = parts[1].parse().ok()?;
        let month = month_from_name(parts[2])?;
        let year: i64 = parts[3].parse().ok()?;
        let (h, m, sec) = parse_clock(parts[4])?;
        return Some(civil_to_sim(year, month, day, h, m, sec));
    }
    // RFC 850: "Tuesday, 02-Jan-07 00:00:00 GMT" → 4 tokens with dashes.
    if parts.len() >= 3 && parts[0].ends_with(',') && parts[1].contains('-') {
        let dmy: Vec<&str> = parts[1].split('-').collect();
        if dmy.len() == 3 {
            let day: u32 = dmy[0].parse().ok()?;
            let month = month_from_name(dmy[1])?;
            let mut year: i64 = dmy[2].parse().ok()?;
            if year < 100 {
                year += if year < 70 { 2000 } else { 1900 };
            }
            let (h, m, sec) = parse_clock(parts[2])?;
            return Some(civil_to_sim(year, month, day, h, m, sec));
        }
    }
    None
}

fn parse_clock(s: &str) -> Option<(u32, u32, u32)> {
    let hms: Vec<&str> = s.split(':').collect();
    if hms.len() != 3 {
        return None;
    }
    let h: u32 = hms[0].parse().ok()?;
    let m: u32 = hms[1].parse().ok()?;
    let sec: u32 = hms[2].parse().ok()?;
    if h > 23 || m > 59 || sec > 60 {
        return None;
    }
    Some((h, m, sec))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_jan_first_2007() {
        assert_eq!(civil_to_sim(2007, 1, 1, 0, 0, 0), SimTime::EPOCH);
        assert_eq!(sim_to_civil(SimTime::EPOCH), (2007, 1, 1, 0, 0, 0));
    }

    #[test]
    fn round_trip_format_parse() {
        for t in [0u64, 1, 86_400, 31_536_000, 123_456_789] {
            let t = SimTime::from_secs(t);
            let s = format_http_date(t);
            assert_eq!(parse_http_date(&s), Some(t), "failed for {s}");
        }
    }

    #[test]
    fn known_weekday() {
        // 2007-01-01 was a Monday.
        assert!(format_http_date(SimTime::EPOCH).starts_with("Mon, 01 Jan 2007"));
    }

    #[test]
    fn leap_year_handling() {
        // 2008 was a leap year: Feb 29 exists.
        let t = civil_to_sim(2008, 2, 29, 12, 0, 0);
        assert_eq!(sim_to_civil(t), (2008, 2, 29, 12, 0, 0));
    }

    #[test]
    fn rfc850_two_digit_year() {
        let t = parse_http_date("Friday, 01-Feb-08 00:00:00 GMT").unwrap();
        assert_eq!(sim_to_civil(t).0, 2008);
        let t = parse_http_date("Friday, 01-Feb-99 00:00:00 GMT").unwrap();
        assert_eq!(t, SimTime::EPOCH); // 1999 < epoch → saturate
    }

    #[test]
    fn asctime_with_double_space() {
        let t = parse_http_date("Tue Jan  2 03:04:05 2007").unwrap();
        assert_eq!(sim_to_civil(t), (2007, 1, 2, 3, 4, 5));
    }

    #[test]
    fn pre_epoch_saturates() {
        assert_eq!(parse_http_date("Thu, 01 Jan 1970 00:00:00 GMT"), Some(SimTime::EPOCH));
    }

    #[test]
    fn garbage_rejected() {
        for bad in [
            "",
            "yesterday",
            "Tue, xx Jan 2007 00:00:00 GMT",
            "Tue, 02 Foo 2007 00:00:00 GMT",
            "Tue, 02 Jan 2007 25:00:00 GMT",
        ] {
            assert_eq!(parse_http_date(bad), None, "should reject {bad:?}");
        }
    }

    #[test]
    fn one_year_expiry_is_365_days() {
        let t = civil_to_sim(2008, 1, 1, 0, 0, 0);
        assert_eq!(t.as_secs(), 365 * 86_400);
    }
}
