//! Simulated wall-clock time.
//!
//! Every component of the reproduction (cookie expiry, server latency, user
//! think time) runs on a deterministic simulated clock so that experiments
//! are exactly reproducible from a seed. [`SimTime`] is an absolute instant
//! (milliseconds since the simulation epoch) and [`SimDuration`] a span.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use cp_runtime::json::{FromJson, Json, JsonError, ToJson};

/// An absolute instant on the simulated clock, in milliseconds since the
/// simulation epoch (which the experiments anchor at 2007-01-01 00:00:00 UTC
/// for cookie-date realism).
///
/// ```
/// use cp_cookies::{SimTime, SimDuration};
/// let t = SimTime::from_millis(1_000);
/// let later = t + SimDuration::from_secs(2);
/// assert_eq!(later.as_millis(), 3_000);
/// assert!(later > t);
/// assert_eq!(later - t, SimDuration::from_secs(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

// Both types serialize as their raw millisecond count, matching the
// newtype representation the jar's JSON format has always used.
impl ToJson for SimTime {
    fn to_json(&self) -> Json {
        Json::from(self.0)
    }
}

impl FromJson for SimTime {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        u64::from_json(value).map(SimTime)
    }
}

impl ToJson for SimDuration {
    fn to_json(&self) -> Json {
        Json::from(self.0)
    }
}

impl FromJson for SimDuration {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        u64::from_json(value).map(SimDuration)
    }
}

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const EPOCH: SimTime = SimTime(0);

    /// Creates an instant from milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Creates an instant from seconds since the epoch.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000)
    }

    /// Milliseconds since the epoch.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds since the epoch.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000
    }

    /// Saturating difference: `self - earlier`, or zero if `earlier` is
    /// later.
    pub const fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Creates a span from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000)
    }

    /// Creates a span from whole days.
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * 86_400_000)
    }

    /// The span in milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// The span in whole seconds.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000
    }

    /// The span in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}ms", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else {
            write!(f, "{}ms", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        assert_eq!((t + SimDuration::from_millis(500)).as_millis(), 10_500);
        assert_eq!(SimTime::from_secs(12) - t, SimDuration::from_secs(2));
    }

    #[test]
    fn subtraction_saturates() {
        let early = SimTime::from_millis(5);
        let late = SimTime::from_millis(10);
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_millis(5));
    }

    #[test]
    fn duration_units() {
        assert_eq!(SimDuration::from_days(1).as_secs(), 86_400);
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
        assert!((SimDuration::from_millis(1_500).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_millis(120).to_string(), "120ms");
        assert_eq!(SimDuration::from_millis(2_500).to_string(), "2.500s");
        assert_eq!(SimTime::from_millis(7).to_string(), "t+7ms");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert_eq!(SimTime::EPOCH, SimTime::from_millis(0));
    }
}
