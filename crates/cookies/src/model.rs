//! The cookie record, including the paper's `useful` marking field.

use std::fmt;

use cp_runtime::json::{FromJson, Json, JsonError, ToJson};

use crate::time::SimTime;

/// Whether a cookie (or a request) is first-party or third-party relative to
/// the page the user is visiting (§2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Party {
    /// Created by / sent to the site the user is currently visiting.
    First,
    /// Created by / sent to a different site (trackers, ad networks, …).
    Third,
}

impl fmt::Display for Party {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Party::First => "first-party",
            Party::Third => "third-party",
        })
    }
}

// Enum-variant-name encoding, like the derived serde representation.
impl ToJson for Party {
    fn to_json(&self) -> Json {
        Json::from(match self {
            Party::First => "First",
            Party::Third => "Third",
        })
    }
}

impl FromJson for Party {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value.as_str() {
            Some("First") => Ok(Party::First),
            Some("Third") => Ok(Party::Third),
            _ => Err(JsonError::msg("expected `First` or `Third`")),
        }
    }
}

/// A browser cookie record.
///
/// Besides the standard Netscape/RFC 2109 fields this carries the paper's
/// extension: a [`useful`](Cookie::useful) flag that starts `false` and can
/// only move `false → true` during the FORCUM training process (§3.2,
/// step 5) — enforced by [`mark_useful`](Cookie::mark_useful) being the only
/// public mutator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cookie {
    /// Cookie name.
    pub name: String,
    /// Cookie value.
    pub value: String,
    /// Domain the cookie is scoped to (normalized lower-case, no leading
    /// dot). See [`host_only`](Cookie::host_only) for the matching rule.
    pub domain: String,
    /// If `true`, only the exact host matches; if `false` (a `Domain`
    /// attribute was present), subdomains match too.
    pub host_only: bool,
    /// Path the cookie is scoped to (`/` by default).
    pub path: String,
    /// Absolute expiry instant; `None` makes this a **session cookie**.
    pub expires: Option<SimTime>,
    /// The `Secure` attribute.
    pub secure: bool,
    /// The `HttpOnly` attribute.
    pub http_only: bool,
    /// When the cookie was created (first stored).
    pub created: SimTime,
    useful: bool,
}

impl Cookie {
    /// Creates a host-only session cookie with default scoping — the typical
    /// starting point for tests and builders.
    pub fn new(
        name: impl Into<String>,
        value: impl Into<String>,
        domain: impl Into<String>,
        created: SimTime,
    ) -> Self {
        Cookie {
            name: name.into(),
            value: value.into(),
            domain: domain.into().to_ascii_lowercase(),
            host_only: true,
            path: "/".to_string(),
            expires: None,
            secure: false,
            http_only: false,
            created,
            useful: false,
        }
    }

    /// Builder-style: sets an absolute expiry, making this a persistent
    /// cookie.
    pub fn with_expiry(mut self, expires: SimTime) -> Self {
        self.expires = Some(expires);
        self
    }

    /// Builder-style: sets the path scope.
    pub fn with_path(mut self, path: impl Into<String>) -> Self {
        self.path = path.into();
        self
    }

    /// Builder-style: sets a `Domain` attribute (subdomains will match).
    pub fn with_domain_attribute(mut self, domain: impl Into<String>) -> Self {
        self.domain = domain.into().trim_start_matches('.').to_ascii_lowercase();
        self.host_only = false;
        self
    }

    /// Whether this is a **persistent** cookie (has an expiry date) as
    /// opposed to a session cookie.
    pub fn is_persistent(&self) -> bool {
        self.expires.is_some()
    }

    /// Whether the cookie has expired at `now`.
    pub fn is_expired(&self, now: SimTime) -> bool {
        self.expires.is_some_and(|e| e <= now)
    }

    /// The paper's usefulness mark. `false` until the FORCUM process (or a
    /// backward-error-recovery click) marks the cookie useful.
    pub fn useful(&self) -> bool {
        self.useful
    }

    /// Marks the cookie useful. Monotone: there is deliberately no inverse,
    /// matching §3.2 step 5 ("the value of the field `useful` can only be
    /// changed in one direction").
    pub fn mark_useful(&mut self) {
        self.useful = true;
    }

    /// Domain-matching per RFC 6265 §5.1.3: exact match for host-only
    /// cookies, suffix-on-label-boundary otherwise.
    pub fn domain_matches(&self, host: &str) -> bool {
        let host = host.to_ascii_lowercase();
        if self.host_only {
            return host == self.domain;
        }
        host == self.domain
            || (host.ends_with(&self.domain)
                && host.as_bytes().get(host.len() - self.domain.len() - 1) == Some(&b'.'))
    }

    /// Path-matching per RFC 6265 §5.1.4.
    pub fn path_matches(&self, request_path: &str) -> bool {
        if request_path == self.path {
            return true;
        }
        if request_path.starts_with(&self.path) {
            return self.path.ends_with('/')
                || request_path.as_bytes().get(self.path.len()) == Some(&b'/');
        }
        false
    }

    /// Whether this cookie should be attached to a request for
    /// `host`/`path` at time `now` (ignoring policy, which the jar applies).
    pub fn matches_request(&self, host: &str, path: &str, now: SimTime) -> bool {
        !self.is_expired(now) && self.domain_matches(host) && self.path_matches(path)
    }

    /// The identity key used for replacement in the jar: (name, domain,
    /// path).
    pub fn identity(&self) -> (&str, &str, &str) {
        (&self.name, &self.domain, &self.path)
    }
}

impl ToJson for Cookie {
    fn to_json(&self) -> Json {
        Json::object()
            .set("name", &self.name)
            .set("value", &self.value)
            .set("domain", &self.domain)
            .set("host_only", self.host_only)
            .set("path", &self.path)
            .set("expires", self.expires.as_ref().map(ToJson::to_json))
            .set("secure", self.secure)
            .set("http_only", self.http_only)
            .set("created", self.created.to_json())
            .set("useful", self.useful)
    }
}

impl FromJson for Cookie {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Cookie {
            name: String::from_json(value.require("name")?)?,
            value: String::from_json(value.require("value")?)?,
            domain: String::from_json(value.require("domain")?)?,
            host_only: bool::from_json(value.require("host_only")?)?,
            path: String::from_json(value.require("path")?)?,
            expires: Option::<SimTime>::from_json(value.require("expires")?)?,
            secure: bool::from_json(value.require("secure")?)?,
            http_only: bool::from_json(value.require("http_only")?)?,
            created: SimTime::from_json(value.require("created")?)?,
            useful: bool::from_json(value.require("useful")?)?,
        })
    }
}

impl fmt::Display for Cookie {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}={} [{}{}; path={}]",
            self.name,
            self.value,
            self.domain,
            if self.is_persistent() { "; persistent" } else { "" },
            self.path
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn base() -> Cookie {
        Cookie::new("id", "42", "example.com", SimTime::EPOCH)
    }

    #[test]
    fn session_vs_persistent() {
        let c = base();
        assert!(!c.is_persistent());
        let c = c.with_expiry(SimTime::from_secs(100));
        assert!(c.is_persistent());
        assert!(!c.is_expired(SimTime::from_secs(99)));
        assert!(c.is_expired(SimTime::from_secs(100)));
    }

    #[test]
    fn useful_is_monotone() {
        let mut c = base();
        assert!(!c.useful());
        c.mark_useful();
        assert!(c.useful());
        // No API exists to unmark; this is a compile-time guarantee.
    }

    #[test]
    fn host_only_domain_matching() {
        let c = base();
        assert!(c.domain_matches("example.com"));
        assert!(c.domain_matches("EXAMPLE.COM"));
        assert!(!c.domain_matches("www.example.com"));
        assert!(!c.domain_matches("badexample.com"));
    }

    #[test]
    fn domain_attribute_matches_subdomains() {
        let c = base().with_domain_attribute(".example.com");
        assert!(c.domain_matches("example.com"));
        assert!(c.domain_matches("www.example.com"));
        assert!(c.domain_matches("a.b.example.com"));
        assert!(!c.domain_matches("badexample.com"));
        assert!(!c.domain_matches("example.com.evil.net"));
    }

    #[test]
    fn path_matching_rfc6265() {
        let c = base().with_path("/docs");
        assert!(c.path_matches("/docs"));
        assert!(c.path_matches("/docs/"));
        assert!(c.path_matches("/docs/web"));
        assert!(!c.path_matches("/doc"));
        assert!(!c.path_matches("/docsextra"));
        assert!(!c.path_matches("/"));
        let root = base();
        assert!(root.path_matches("/anything"));
    }

    #[test]
    fn matches_request_combines_all() {
        let now = SimTime::from_secs(50);
        let c = base().with_expiry(SimTime::from_secs(100)).with_path("/a");
        assert!(c.matches_request("example.com", "/a/b", now));
        assert!(!c.matches_request("other.com", "/a/b", now));
        assert!(!c.matches_request("example.com", "/c", now));
        assert!(!c.matches_request("example.com", "/a", now + SimDuration::from_secs(100)));
    }
}
