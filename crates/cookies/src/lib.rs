//! HTTP cookie machinery for the CookiePicker reproduction.
//!
//! Implements the cookie semantics the paper's Firefox extension manipulates:
//!
//! * [`model`] — the [`Cookie`] record, including the paper's
//!   extra **`useful`** field (§3.2, step 5): every cookie starts `useful =
//!   false` and the FORCUM training process may flip it to `true`, never
//!   back.
//! * [`parse`] — `Set-Cookie` / `Cookie` header codecs in the
//!   Netscape/RFC 2109 style of the 2007-era Web, with RFC 6265-flavoured
//!   robustness.
//! * [`date`] — the three legacy HTTP date formats.
//! * [`audit`] — privacy summaries of a jar (lifetime histogram, removable
//!   tracking surface).
//! * [`jar`] — the browser cookie jar: storage, domain/path matching,
//!   expiry, replacement, usefulness marking and useless-cookie removal.
//! * [`policy`] — browser cookie policies, including the CookiePicker policy
//!   "send first-party persistent cookies only when marked useful".
//! * [`time`] — simulated wall-clock time ([`SimTime`]), so
//!   every experiment is deterministic.
//!
//! # Example
//!
//! ```
//! use cp_cookies::{CookieJar, SimTime, parse_set_cookie};
//!
//! let now = SimTime::from_millis(1_000);
//! let cookie = parse_set_cookie(
//!     "pref=dark; Max-Age=31536000; Path=/",
//!     "shop.example.com",
//!     now,
//! ).unwrap();
//! assert!(cookie.is_persistent());
//!
//! let mut jar = CookieJar::new();
//! jar.store(cookie, now);
//! let send = jar.cookies_for("shop.example.com", "/basket", now);
//! assert_eq!(send.len(), 1);
//! assert_eq!(send[0].name, "pref");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod date;
pub mod jar;
pub mod model;
pub mod parse;
pub mod policy;
pub mod time;

pub use audit::{audit_jar, JarAudit};
pub use jar::CookieJar;
pub use model::{Cookie, Party};
pub use parse::{encode_cookie_header, parse_cookie_header, parse_set_cookie, ParseCookieError};
pub use policy::CookiePolicy;
pub use time::{SimDuration, SimTime};

/// Whether two hosts belong to the same *site* (registrable domain).
///
/// CookiePicker only needs first/third-party classification, so we use the
/// pragmatic rule browsers used before the public-suffix list: the
/// registrable domain is the last two labels, or the last three when the
/// second-to-last label is a well-known second-level suffix (`co.uk`,
/// `com.au`, …).
///
/// ```
/// use cp_cookies::same_site;
/// assert!(same_site("www.example.com", "img.example.com"));
/// assert!(!same_site("example.com", "tracker.net"));
/// assert!(same_site("a.co.uk", "www.a.co.uk"));
/// assert!(!same_site("a.co.uk", "b.co.uk"));
/// ```
pub fn same_site(host_a: &str, host_b: &str) -> bool {
    registrable_domain(host_a) == registrable_domain(host_b)
}

/// The registrable domain of a host (see [`same_site`]).
pub fn registrable_domain(host: &str) -> String {
    const SECOND_LEVEL: &[&str] = &["co", "com", "org", "net", "gov", "ac", "edu"];
    let host = host.to_ascii_lowercase();
    let labels: Vec<&str> = host.split('.').collect();
    if labels.len() <= 2 {
        return host;
    }
    let n = labels.len();
    // e.g. ["www", "a", "co", "uk"] → second-to-last is "co" and the TLD is
    // short: keep three labels.
    if labels[n - 2].len() <= 3 && SECOND_LEVEL.contains(&labels[n - 2]) && labels[n - 1].len() <= 3
    {
        labels[n - 3..].join(".")
    } else {
        labels[n - 2..].join(".")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registrable_domain_basic() {
        assert_eq!(registrable_domain("www.example.com"), "example.com");
        assert_eq!(registrable_domain("example.com"), "example.com");
        assert_eq!(registrable_domain("a.b.c.example.com"), "example.com");
    }

    #[test]
    fn registrable_domain_second_level() {
        assert_eq!(registrable_domain("www.bbc.co.uk"), "bbc.co.uk");
        assert_eq!(registrable_domain("shop.foo.com.au"), "foo.com.au");
    }

    #[test]
    fn same_site_case_insensitive() {
        assert!(same_site("WWW.Example.COM", "example.com"));
    }

    #[test]
    fn localhost_is_its_own_site() {
        assert!(same_site("localhost", "localhost"));
        assert!(!same_site("localhost", "example.com"));
    }
}
