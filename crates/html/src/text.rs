//! Rendered-text extraction (`innerText`-style).
//!
//! [`Document::text_content`] concatenates raw text nodes;
//! [`inner_text`] instead approximates what a browser *renders*: invisible
//! subtrees contribute nothing, block-level boundaries become newlines,
//! consecutive whitespace collapses. This is the right notion of "what the
//! user perceives" for window comparison (the Doppelganger baseline) and
//! for debugging CVCE decisions.

use crate::dom::{Document, NodeData, NodeId};
use crate::visibility::is_node_visible;

/// Elements that introduce a line break before and after their content.
fn is_block(name: &str) -> bool {
    matches!(
        name,
        "address"
            | "article"
            | "aside"
            | "blockquote"
            | "body"
            | "dd"
            | "div"
            | "dl"
            | "dt"
            | "fieldset"
            | "figure"
            | "footer"
            | "form"
            | "h1"
            | "h2"
            | "h3"
            | "h4"
            | "h5"
            | "h6"
            | "header"
            | "hr"
            | "legend"
            | "li"
            | "main"
            | "nav"
            | "ol"
            | "p"
            | "pre"
            | "section"
            | "table"
            | "td"
            | "th"
            | "tr"
            | "ul"
            | "html"
    )
}

/// Extracts the rendered text of the subtree at `root`.
///
/// * Invisible nodes (scripts, styles, comments, `display:none`, head
///   content) contribute nothing.
/// * Block elements start and end on their own line.
/// * Runs of whitespace collapse to single spaces; blank lines collapse.
///
/// ```
/// use cp_html::{parse_document, NodeId};
/// use cp_html::text::inner_text;
///
/// let doc = parse_document(
///     "<body><h1>Title</h1><p>one   two</p><script>x()</script><div>three</div></body>",
/// );
/// assert_eq!(inner_text(&doc, NodeId::DOCUMENT), "Title\none two\nthree");
/// ```
pub fn inner_text(doc: &Document, root: NodeId) -> String {
    let mut out = String::new();
    walk(doc, root, &mut out);
    // Normalize: trim lines, drop empties.
    let lines: Vec<&str> = out.lines().map(str::trim).filter(|l| !l.is_empty()).collect();
    lines.join("\n")
}

fn walk(doc: &Document, node: NodeId, out: &mut String) {
    match doc.data(node) {
        NodeData::Text(text) => {
            let collapsed: Vec<&str> = text.split_whitespace().collect();
            if collapsed.is_empty() {
                return;
            }
            if !out.is_empty() && !out.ends_with([' ', '\n']) {
                out.push(' ');
            }
            out.push_str(&collapsed.join(" "));
        }
        NodeData::Element { name, .. } => {
            if !is_node_visible(doc, node) {
                return;
            }
            let block = is_block(name);
            if block && !out.is_empty() && !out.ends_with('\n') {
                out.push('\n');
            }
            for &c in doc.children(node) {
                walk(doc, c, out);
            }
            if block && !out.is_empty() && !out.ends_with('\n') {
                out.push('\n');
            }
        }
        NodeData::Document => {
            for &c in doc.children(node) {
                walk(doc, c, out);
            }
        }
        NodeData::Comment(_) | NodeData::Doctype { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    fn text(html: &str) -> String {
        inner_text(&parse_document(html), NodeId::DOCUMENT)
    }

    #[test]
    fn blocks_become_lines() {
        assert_eq!(text("<p>a</p><p>b</p><div>c</div>"), "a\nb\nc");
    }

    #[test]
    fn inline_elements_stay_on_line() {
        assert_eq!(text("<p>a <b>bold</b> c</p>"), "a bold c");
        assert_eq!(text("<span>x</span><span>y</span>"), "x y");
    }

    #[test]
    fn whitespace_collapses() {
        assert_eq!(text("<p>  a \n\n  b\t c  </p>"), "a b c");
    }

    #[test]
    fn invisible_content_dropped() {
        assert_eq!(
            text("<p>seen</p><script>var x;</script><style>.a{}</style><!-- c --><div style=\"display:none\">hidden</div>"),
            "seen"
        );
    }

    #[test]
    fn title_not_rendered() {
        assert_eq!(text("<title>page title</title><body><p>body</p></body>"), "body");
    }

    #[test]
    fn lists_and_tables_line_per_item() {
        assert_eq!(text("<ul><li>one</li><li>two</li></ul>"), "one\ntwo");
        assert_eq!(text("<table><tr><td>a</td><td>b</td></tr></table>"), "a\nb");
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(text(""), "");
        assert_eq!(text("<div></div><p>   </p>"), "");
    }
}
