//! A forgiving tree builder in the spirit of browser HTML parsers.
//!
//! Real-world HTML is often malformed; the paper's step 3 (§3.2) requires
//! that both the regular and the hidden page version be built by the *same*
//! parser so malformed input is treated identically. This builder implements
//! the recovery rules that matter for 2007-era page structure:
//!
//! * implied `<html>`, `<head>` and `<body>`;
//! * void elements never open a scope (`<br>`, `<img>`, `<meta>`, …);
//! * automatic closing of `<p>`, `<li>`, `<dt>/<dd>`, `<tr>`, `<td>/<th>`,
//!   `<option>`, table sections and nested `<a>`;
//! * stray end tags are ignored; mis-nested end tags close up to the nearest
//!   matching open element;
//! * unterminated elements are closed at end of input.

use crate::dom::{Document, NodeId};
use crate::tokenizer::{tokenize, Token};

/// Elements that never have content (HTML void elements).
fn is_void(name: &str) -> bool {
    matches!(
        name,
        "area"
            | "base"
            | "br"
            | "col"
            | "embed"
            | "hr"
            | "img"
            | "input"
            | "link"
            | "meta"
            | "param"
            | "source"
            | "track"
            | "wbr"
    )
}

/// Elements whose start tag belongs in `<head>` when seen before `<body>`.
fn is_head_content(name: &str) -> bool {
    matches!(name, "title" | "meta" | "link" | "base" | "style" | "noscript")
}

/// Block-level elements that implicitly close an open `<p>`.
fn closes_p(name: &str) -> bool {
    matches!(
        name,
        "address"
            | "article"
            | "aside"
            | "blockquote"
            | "div"
            | "dl"
            | "fieldset"
            | "footer"
            | "form"
            | "h1"
            | "h2"
            | "h3"
            | "h4"
            | "h5"
            | "h6"
            | "header"
            | "hr"
            | "main"
            | "nav"
            | "ol"
            | "p"
            | "pre"
            | "section"
            | "table"
            | "ul"
    )
}

/// Parses an HTML document into a [`Document`] DOM tree. Never fails.
///
/// ```
/// use cp_html::parse_document;
///
/// // Implied structure and recovery from unclosed tags:
/// let doc = parse_document("<title>t</title><p>one<p>two");
/// assert!(doc.head().is_some());
/// let body = doc.body().unwrap();
/// assert_eq!(doc.element_children(body).len(), 2);
/// ```
pub fn parse_document(input: &str) -> Document {
    let mut builder = TreeBuilder::new();
    for token in tokenize(input) {
        builder.process(token);
    }
    builder.finish()
}

struct TreeBuilder {
    doc: Document,
    /// Open element stack; `stack[0]` is the document node.
    stack: Vec<NodeId>,
    html: Option<NodeId>,
    head: Option<NodeId>,
    body: Option<NodeId>,
    head_closed: bool,
}

impl TreeBuilder {
    fn new() -> Self {
        TreeBuilder {
            doc: Document::new(),
            stack: vec![NodeId::DOCUMENT],
            html: None,
            head: None,
            body: None,
            head_closed: false,
        }
    }

    fn current(&self) -> NodeId {
        *self.stack.last().expect("stack never empty")
    }

    fn ensure_html(&mut self) -> NodeId {
        if let Some(h) = self.html {
            return h;
        }
        let h = self.doc.create_element("html", vec![]);
        self.doc.append_child(NodeId::DOCUMENT, h);
        self.stack.push(h);
        self.html = Some(h);
        h
    }

    fn ensure_head(&mut self) -> NodeId {
        if let Some(h) = self.head {
            return h;
        }
        let html = self.ensure_html();
        let h = self.doc.create_element("head", vec![]);
        self.doc.append_child(html, h);
        self.head = Some(h);
        h
    }

    fn ensure_body(&mut self) -> NodeId {
        if let Some(b) = self.body {
            return b;
        }
        // Close the head if it is on the stack.
        if let Some(head) = self.head {
            while self.stack.contains(&head) && self.current() != head {
                self.stack.pop();
            }
            if self.current() == head {
                self.stack.pop();
            }
        } else {
            self.ensure_head();
        }
        self.head_closed = true;
        let html = self.ensure_html();
        // Reset stack to [document, html] before opening body.
        self.stack.truncate(1);
        self.stack.push(html);
        let b = self.doc.create_element("body", vec![]);
        self.doc.append_child(html, b);
        self.stack.push(b);
        self.body = Some(b);
        b
    }

    fn in_body(&self) -> bool {
        self.body.is_some()
    }

    fn process(&mut self, token: Token) {
        match token {
            Token::Doctype(name) => {
                if self.html.is_none() {
                    let d = self.doc.create_doctype(name);
                    self.doc.append_child(NodeId::DOCUMENT, d);
                }
            }
            Token::Comment(text) => {
                let c = self.doc.create_comment(text);
                let parent = self.current();
                self.doc.append_child(parent, c);
            }
            Token::Text(text) => self.process_text(text),
            Token::StartTag { name, attrs, self_closing } => {
                self.process_start(&name, attrs, self_closing)
            }
            Token::EndTag(name) => self.process_end(&name),
        }
    }

    fn process_text(&mut self, text: String) {
        let in_head_context = !self.in_body();
        if in_head_context {
            // Whitespace before <body> is dropped; real text forces the body.
            if text.trim().is_empty() {
                // Inside a head raw-text element (title/style/script) keep it.
                let cur = self.current();
                if self.doc.tag_name(cur).is_some_and(is_head_content)
                    || self.doc.tag_name(cur) == Some("script")
                {
                    let t = self.doc.create_text(text);
                    self.doc.append_child(cur, t);
                }
                return;
            }
            let cur = self.current();
            if self.doc.tag_name(cur).is_some_and(is_head_content)
                || self.doc.tag_name(cur) == Some("script")
            {
                let t = self.doc.create_text(text);
                self.doc.append_child(cur, t);
                return;
            }
            self.ensure_body();
        }
        let cur = self.current();
        let t = self.doc.create_text(text);
        self.doc.append_child(cur, t);
    }

    fn process_start(
        &mut self,
        name: &str,
        attrs: Vec<crate::tokenizer::Attribute>,
        self_closing: bool,
    ) {
        let attrs: Vec<(String, String)> = attrs.into_iter().map(|a| (a.name, a.value)).collect();
        match name {
            "html" => {
                let h = self.ensure_html();
                for (k, v) in attrs {
                    if self.doc.attr(h, &k).is_none() {
                        self.doc.set_attr(h, &k, v);
                    }
                }
                return;
            }
            "head" => {
                let h = self.ensure_head();
                if !self.head_closed && !self.stack.contains(&h) {
                    self.stack.push(h);
                }
                for (k, v) in attrs {
                    if self.doc.attr(h, &k).is_none() {
                        self.doc.set_attr(h, &k, v);
                    }
                }
                return;
            }
            "body" => {
                let b = self.ensure_body();
                for (k, v) in attrs {
                    if self.doc.attr(b, &k).is_none() {
                        self.doc.set_attr(b, &k, v);
                    }
                }
                return;
            }
            _ => {}
        }

        // Decide placement: head-content elements go to the head until the
        // body opens; everything else forces the body (scripts may live in
        // either — they stay wherever we currently are).
        if !self.in_body() {
            if is_head_content(name) || name == "script" {
                let head = self.ensure_head();
                if !self.stack.contains(&head) {
                    self.stack.push(head);
                }
            } else {
                self.ensure_body();
            }
        }

        // Automatic closing rules.
        match name {
            "p" if self.has_open("p") => self.close_nearest("p"),
            n if closes_p(n) && self.has_open("p") => self.close_nearest("p"),
            "li" if self.has_open_until("li", &["ul", "ol", "menu"]) => self.close_nearest("li"),
            "dt" | "dd" => {
                if self.has_open_until("dt", &["dl"]) {
                    self.close_nearest("dt");
                }
                if self.has_open_until("dd", &["dl"]) {
                    self.close_nearest("dd");
                }
            }
            "tr" if self.has_open_until("tr", &["table"]) => self.close_nearest("tr"),
            "td" | "th" => {
                if self.has_open_until("td", &["tr", "table"]) {
                    self.close_nearest("td");
                }
                if self.has_open_until("th", &["tr", "table"]) {
                    self.close_nearest("th");
                }
            }
            "option" if self.has_open("option") => self.close_nearest("option"),
            "thead" | "tbody" | "tfoot" => {
                for s in ["thead", "tbody", "tfoot"] {
                    if self.has_open_until(s, &["table"]) {
                        self.close_nearest(s);
                    }
                }
            }
            "a" if self.has_open("a") => self.close_nearest("a"),
            _ => {}
        }

        let el = self.doc.create_element(name, attrs);
        let parent = self.current();
        self.doc.append_child(parent, el);
        if !is_void(name) && !self_closing {
            self.stack.push(el);
        }
    }

    fn process_end(&mut self, name: &str) {
        match name {
            "html" | "body" => {
                // Keep them open until EOF; browsers effectively do the same.
                return;
            }
            "head" => {
                if let Some(head) = self.head {
                    if self.stack.contains(&head) {
                        while self.current() != head {
                            self.stack.pop();
                        }
                        self.stack.pop();
                        self.head_closed = true;
                    }
                }
                return;
            }
            "p" if !self.has_open("p") => {
                // A stray </p> creates an empty paragraph in browsers.
                if self.in_body() {
                    let parent = self.current();
                    let p = self.doc.create_element("p", vec![]);
                    self.doc.append_child(parent, p);
                }
                return;
            }
            _ => {}
        }
        if self.has_open(name) {
            self.close_nearest(name);
        }
        // Otherwise: stray end tag, ignored.
    }

    fn has_open(&self, name: &str) -> bool {
        self.stack.iter().any(|&n| self.doc.tag_name(n) == Some(name))
    }

    /// Whether `name` is open *above* (closer to the top than) any of the
    /// `barriers` — used for scoped auto-closing (e.g. `li` within `ul`).
    fn has_open_until(&self, name: &str, barriers: &[&str]) -> bool {
        for &n in self.stack.iter().rev() {
            match self.doc.tag_name(n) {
                Some(t) if t == name => return true,
                Some(t) if barriers.contains(&t) => return false,
                _ => {}
            }
        }
        false
    }

    fn close_nearest(&mut self, name: &str) {
        while let Some(&top) = self.stack.last() {
            if self.stack.len() <= 1 {
                break;
            }
            let matched = self.doc.tag_name(top) == Some(name);
            self.stack.pop();
            if matched {
                break;
            }
        }
    }

    fn finish(mut self) -> Document {
        // Guarantee the skeleton exists even for empty input.
        self.ensure_body();
        self.doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::NodeId;

    #[test]
    fn empty_input_has_skeleton() {
        let doc = parse_document("");
        assert!(doc.html().is_some());
        assert!(doc.head().is_some());
        assert!(doc.body().is_some());
    }

    #[test]
    fn full_document() {
        let doc = parse_document(
            "<!DOCTYPE html><html lang=en><head><title>T</title></head><body><p>x</p></body></html>",
        );
        assert_eq!(doc.attr(doc.html().unwrap(), "lang"), Some("en"));
        let title = doc.find_element(NodeId::DOCUMENT, "title").unwrap();
        assert_eq!(doc.text_content(title), "T");
        assert_eq!(doc.parent(title), doc.head());
        let p = doc.find_element(NodeId::DOCUMENT, "p").unwrap();
        assert_eq!(doc.parent(p), doc.body());
    }

    #[test]
    fn implied_structure() {
        let doc = parse_document("just text");
        let body = doc.body().unwrap();
        assert_eq!(doc.text_content(body), "just text");
    }

    #[test]
    fn head_elements_to_head_body_elements_to_body() {
        let doc = parse_document("<meta charset=utf-8><div>x</div>");
        let meta = doc.find_element(NodeId::DOCUMENT, "meta").unwrap();
        assert_eq!(doc.parent(meta), doc.head());
        let div = doc.find_element(NodeId::DOCUMENT, "div").unwrap();
        assert_eq!(doc.parent(div), doc.body());
    }

    #[test]
    fn unclosed_paragraphs_are_siblings() {
        let doc = parse_document("<p>one<p>two<p>three");
        let body = doc.body().unwrap();
        let ps = doc.element_children(body);
        assert_eq!(ps.len(), 3);
        assert_eq!(doc.text_content(ps[0]), "one");
        assert_eq!(doc.text_content(ps[2]), "three");
    }

    #[test]
    fn p_closed_by_block_elements() {
        let doc = parse_document("<p>para<div>block</div>");
        let body = doc.body().unwrap();
        let kids = doc.element_children(body);
        assert_eq!(kids.len(), 2);
        assert_eq!(doc.tag_name(kids[0]), Some("p"));
        assert_eq!(doc.tag_name(kids[1]), Some("div"));
        assert_eq!(doc.parent(kids[1]), Some(body));
    }

    #[test]
    fn list_items_autoclose() {
        let doc = parse_document("<ul><li>a<li>b<li>c</ul>");
        let ul = doc.find_element(NodeId::DOCUMENT, "ul").unwrap();
        assert_eq!(doc.element_children(ul).len(), 3);
    }

    #[test]
    fn nested_list_items_stay_nested() {
        let doc = parse_document("<ul><li>a<ul><li>a1<li>a2</ul><li>b</ul>");
        let uls = doc.find_all(NodeId::DOCUMENT, "ul");
        assert_eq!(uls.len(), 2);
        assert_eq!(doc.element_children(uls[0]).len(), 2); // li a (contains inner ul), li b
        assert_eq!(doc.element_children(uls[1]).len(), 2); // a1, a2
    }

    #[test]
    fn table_rows_and_cells_autoclose() {
        let doc = parse_document("<table><tr><td>1<td>2<tr><td>3</table>");
        let trs = doc.find_all(NodeId::DOCUMENT, "tr");
        assert_eq!(trs.len(), 2);
        assert_eq!(doc.element_children(trs[0]).len(), 2);
        assert_eq!(doc.element_children(trs[1]).len(), 1);
    }

    #[test]
    fn void_elements_do_not_nest() {
        let doc = parse_document("<br><br><img src=x><hr>");
        let body = doc.body().unwrap();
        assert_eq!(doc.element_children(body).len(), 4);
        let img = doc.find_element(NodeId::DOCUMENT, "img").unwrap();
        assert!(doc.children(img).is_empty());
    }

    #[test]
    fn misnested_end_tag_recovers() {
        // </b> with b not open: ignored. </i> closes through b.
        let doc = parse_document("<i><b>x</i>y");
        let body = doc.body().unwrap();
        let i = doc.element_children(body)[0];
        assert_eq!(doc.tag_name(i), Some("i"));
        // y lands in body because </i> closed both.
        assert_eq!(doc.text_content(body), "xy");
    }

    #[test]
    fn stray_end_tags_ignored() {
        let doc = parse_document("</div></span>text");
        assert_eq!(doc.text_content(doc.body().unwrap()), "text");
    }

    #[test]
    fn script_in_head_and_body() {
        let doc = parse_document("<script>var a=1;</script><div><script>b</script></div>");
        let scripts = doc.find_all(NodeId::DOCUMENT, "script");
        assert_eq!(scripts.len(), 2);
        assert_eq!(doc.parent(scripts[0]), doc.head());
        let div = doc.find_element(NodeId::DOCUMENT, "div").unwrap();
        assert_eq!(doc.parent(scripts[1]), Some(div));
    }

    #[test]
    fn comments_preserved() {
        let doc = parse_document("<body><!-- note --><p>x</p></body>");
        let body = doc.body().unwrap();
        let kids = doc.children(body);
        assert!(matches!(doc.data(kids[0]), crate::dom::NodeData::Comment(c) if c == " note "));
    }

    #[test]
    fn nested_anchors_autoclose() {
        let doc = parse_document("<a href=1>one<a href=2>two</a>");
        let anchors = doc.find_all(NodeId::DOCUMENT, "a");
        assert_eq!(anchors.len(), 2);
        assert_eq!(doc.parent(anchors[1]), doc.body());
    }

    #[test]
    fn select_options_autoclose() {
        let doc = parse_document("<select><option>a<option>b</select>");
        let sel = doc.find_element(NodeId::DOCUMENT, "select").unwrap();
        assert_eq!(doc.element_children(sel).len(), 2);
    }

    #[test]
    fn attributes_survive_parsing() {
        let doc = parse_document(r#"<div id="main" class="x y" data-v=3>c</div>"#);
        let div = doc.element_by_id("main").unwrap();
        assert_eq!(doc.attr(div, "class"), Some("x y"));
        assert_eq!(doc.attr(div, "data-v"), Some("3"));
    }

    #[test]
    fn deterministic_for_same_input() {
        // Cornerstone of the paper's step 3: same parser ⇒ same tree.
        let html = "<div><p>a<p>b<table><tr><td>x</table><script>s</script>";
        let d1 = parse_document(html);
        let d2 = parse_document(html);
        let n1: Vec<String> = d1.preorder_all().map(|n| d1.node_name(n).to_string()).collect();
        let n2: Vec<String> = d2.preorder_all().map(|n| d2.node_name(n).to_string()).collect();
        assert_eq!(n1, n2);
    }

    #[test]
    fn text_before_head_content_forces_body() {
        let doc = parse_document("hello<title>late</title>");
        assert_eq!(doc.text_content(doc.body().unwrap()), "hellolate");
    }

    #[test]
    fn never_panics_on_garbage() {
        for garbage in [
            "<table><div></table>",
            "</p></p></p>",
            "<head><div>x</div></head>",
            "<body><head><title>t</title></head></body>",
            "<p><table><p>inner</table>after",
            "<<<<",
            "<html><html><body><body>",
        ] {
            let doc = parse_document(garbage);
            assert!(doc.body().is_some(), "body must exist for {garbage:?}");
        }
    }

    #[test]
    fn stray_close_p_makes_empty_paragraph() {
        let doc = parse_document("<body></p>x");
        let body = doc.body().unwrap();
        assert_eq!(doc.element_children(body).len(), 1);
    }
}
