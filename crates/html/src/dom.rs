//! An arena-backed W3C-style Document Object Model.
//!
//! Nodes live in a flat `Vec` inside [`Document`]; [`NodeId`] is an index
//! newtype. The tree is rooted (node 0 is always the document node), labeled
//! (every node has a [node name](Document::node_name)) and ordered — exactly
//! the three properties the paper's tree-matching algorithms require (§4.1).

use std::fmt;

/// Handle to a node inside a [`Document`] arena.
///
/// Only meaningful together with the `Document` that created it. Ids are
/// assigned in creation order and never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// The document root node (always present).
    pub const DOCUMENT: NodeId = NodeId(0);

    /// The raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The payload of a DOM node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeData {
    /// The document root (exactly one per tree, always node 0).
    Document,
    /// A `<!DOCTYPE …>` declaration.
    Doctype {
        /// The doctype name, e.g. `html`.
        name: String,
    },
    /// An element node.
    Element {
        /// Lower-cased tag name.
        name: String,
        /// Attributes in source order, names lower-cased.
        attrs: Vec<(String, String)>,
    },
    /// A text node (character data, entities already decoded).
    Text(
        /// The decoded text.
        String,
    ),
    /// A comment node.
    Comment(
        /// The comment body, without `<!--`/`-->` delimiters.
        String,
    ),
}

#[derive(Debug, Clone)]
struct Node {
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    data: NodeData,
}

/// An HTML document: an arena of [`NodeData`] nodes forming a rooted,
/// labeled, ordered tree.
///
/// ```
/// use cp_html::{Document, NodeData, NodeId};
///
/// let mut doc = Document::new();
/// let html = doc.create_element("html", vec![]);
/// doc.append_child(NodeId::DOCUMENT, html);
/// let body = doc.create_element("body", vec![]);
/// doc.append_child(html, body);
/// let text = doc.create_text("hi");
/// doc.append_child(body, text);
/// assert_eq!(doc.text_content(html), "hi");
/// assert_eq!(doc.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<Node>,
}

impl Default for Document {
    fn default() -> Self {
        Self::new()
    }
}

impl Document {
    /// Creates a document containing only the root document node.
    pub fn new() -> Self {
        Document {
            nodes: vec![Node { parent: None, children: Vec::new(), data: NodeData::Document }],
        }
    }

    /// Total number of nodes, including the document node.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the document holds only the root node.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    fn push(&mut self, data: NodeData) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("more than u32::MAX DOM nodes"));
        self.nodes.push(Node { parent: None, children: Vec::new(), data });
        id
    }

    /// Creates a detached element node. Tag and attribute names are
    /// lower-cased.
    pub fn create_element(
        &mut self,
        name: impl Into<String>,
        attrs: Vec<(String, String)>,
    ) -> NodeId {
        let name = name.into().to_ascii_lowercase();
        let attrs = attrs.into_iter().map(|(k, v)| (k.to_ascii_lowercase(), v)).collect::<Vec<_>>();
        self.push(NodeData::Element { name, attrs })
    }

    /// Creates a detached text node.
    pub fn create_text(&mut self, text: impl Into<String>) -> NodeId {
        self.push(NodeData::Text(text.into()))
    }

    /// Creates a detached comment node.
    pub fn create_comment(&mut self, text: impl Into<String>) -> NodeId {
        self.push(NodeData::Comment(text.into()))
    }

    /// Creates a detached doctype node.
    pub fn create_doctype(&mut self, name: impl Into<String>) -> NodeId {
        self.push(NodeData::Doctype { name: name.into() })
    }

    /// Appends `child` as the last child of `parent`.
    ///
    /// # Panics
    ///
    /// Panics if `child` already has a parent, or if either id is invalid.
    pub fn append_child(&mut self, parent: NodeId, child: NodeId) {
        assert!(self.nodes[child.index()].parent.is_none(), "node {child} already attached");
        assert_ne!(parent, child, "cannot append a node to itself");
        self.nodes[child.index()].parent = Some(parent);
        self.nodes[parent.index()].children.push(child);
    }

    /// The node's payload.
    pub fn data(&self, id: NodeId) -> &NodeData {
        &self.nodes[id.index()].data
    }

    /// The node's parent, `None` for the document node (or detached nodes).
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.index()].parent
    }

    /// The node's children, in document order.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.index()].children
    }

    /// Only the element children of `id`, in document order.
    pub fn element_children(&self, id: NodeId) -> Vec<NodeId> {
        self.children(id).iter().copied().filter(|&c| self.is_element(c)).collect()
    }

    /// The W3C node name: `#document`, `#text`, `#comment`, the doctype
    /// name, or the element tag name.
    pub fn node_name(&self, id: NodeId) -> &str {
        match self.data(id) {
            NodeData::Document => "#document",
            NodeData::Doctype { name } => name,
            NodeData::Element { name, .. } => name,
            NodeData::Text(_) => "#text",
            NodeData::Comment(_) => "#comment",
        }
    }

    /// Whether the node is an element.
    pub fn is_element(&self, id: NodeId) -> bool {
        matches!(self.data(id), NodeData::Element { .. })
    }

    /// Whether the node is a text node.
    pub fn is_text(&self, id: NodeId) -> bool {
        matches!(self.data(id), NodeData::Text(_))
    }

    /// The element's tag name, or `None` for non-elements.
    pub fn tag_name(&self, id: NodeId) -> Option<&str> {
        match self.data(id) {
            NodeData::Element { name, .. } => Some(name),
            _ => None,
        }
    }

    /// The text of a text node, or `None` otherwise.
    pub fn text(&self, id: NodeId) -> Option<&str> {
        match self.data(id) {
            NodeData::Text(t) => Some(t),
            _ => None,
        }
    }

    /// Attribute lookup (name is matched case-insensitively).
    pub fn attr(&self, id: NodeId, name: &str) -> Option<&str> {
        match self.data(id) {
            NodeData::Element { attrs, .. } => {
                attrs.iter().find(|(k, _)| k.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
            }
            _ => None,
        }
    }

    /// Sets (or adds) an attribute on an element node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an element.
    pub fn set_attr(&mut self, id: NodeId, name: &str, value: impl Into<String>) {
        let name = name.to_ascii_lowercase();
        match &mut self.nodes[id.index()].data {
            NodeData::Element { attrs, .. } => {
                let value = value.into();
                if let Some(slot) = attrs.iter_mut().find(|(k, _)| *k == name) {
                    slot.1 = value;
                } else {
                    attrs.push((name, value));
                }
            }
            _ => panic!("set_attr on non-element node {id}"),
        }
    }

    /// Preorder (document-order) traversal starting at `id`, inclusive.
    pub fn preorder(&self, id: NodeId) -> Preorder<'_> {
        Preorder { doc: self, stack: vec![id] }
    }

    /// Preorder traversal of the whole document.
    pub fn preorder_all(&self) -> Preorder<'_> {
        self.preorder(NodeId::DOCUMENT)
    }

    /// First element (in document order) with the given tag name, searching
    /// the subtree rooted at `from`.
    pub fn find_element(&self, from: NodeId, name: &str) -> Option<NodeId> {
        self.preorder(from).find(|&n| self.tag_name(n).is_some_and(|t| t == name))
    }

    /// Every element with the given tag name in the subtree rooted at `from`.
    pub fn find_all(&self, from: NodeId, name: &str) -> Vec<NodeId> {
        self.preorder(from).filter(|&n| self.tag_name(n).is_some_and(|t| t == name)).collect()
    }

    /// First element with the given `id` attribute value.
    pub fn element_by_id(&self, id_value: &str) -> Option<NodeId> {
        self.preorder_all().find(|&n| self.attr(n, "id") == Some(id_value))
    }

    /// The `<html>` element, if present.
    pub fn html(&self) -> Option<NodeId> {
        self.element_children(NodeId::DOCUMENT)
            .into_iter()
            .find(|&n| self.tag_name(n) == Some("html"))
    }

    /// The `<head>` element, if present.
    pub fn head(&self) -> Option<NodeId> {
        self.html().and_then(|h| {
            self.element_children(h).into_iter().find(|&n| self.tag_name(n) == Some("head"))
        })
    }

    /// The `<body>` element, if present.
    pub fn body(&self) -> Option<NodeId> {
        self.html().and_then(|h| {
            self.element_children(h).into_iter().find(|&n| self.tag_name(n) == Some("body"))
        })
    }

    /// Concatenated text of every text node under `id` (inclusive).
    pub fn text_content(&self, id: NodeId) -> String {
        let mut out = String::new();
        for n in self.preorder(id) {
            if let NodeData::Text(t) = self.data(n) {
                out.push_str(t);
            }
        }
        out
    }

    /// Depth of `id`: the document node is depth 0, `<html>` depth 1, …
    pub fn depth(&self, id: NodeId) -> usize {
        let mut d = 0;
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// Maximum node depth in the document.
    pub fn max_depth(&self) -> usize {
        self.preorder_all().map(|n| self.depth(n)).max().unwrap_or(0)
    }

    /// The root-to-node path of node names, joined by `:` — the *context*
    /// of a text node in the paper's CVCE algorithm (§4.2).
    ///
    /// The document node itself is omitted.
    ///
    /// ```
    /// use cp_html::parse_document;
    /// let doc = parse_document("<p><b>x</b></p>");
    /// let b = doc.find_element(cp_html::NodeId::DOCUMENT, "b").unwrap();
    /// let text = doc.children(b)[0];
    /// assert_eq!(doc.context_path(text), "html:body:p:b");
    /// ```
    pub fn context_path(&self, id: NodeId) -> String {
        let mut names: Vec<&str> = Vec::new();
        let mut cur = self.parent(id);
        while let Some(p) = cur {
            if p != NodeId::DOCUMENT {
                names.push(self.node_name(p));
            }
            cur = self.parent(p);
        }
        names.reverse();
        names.join(":")
    }
}

/// Iterator returned by [`Document::preorder`].
#[derive(Debug)]
pub struct Preorder<'a> {
    doc: &'a Document,
    stack: Vec<NodeId>,
}

impl Iterator for Preorder<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        let kids = self.doc.children(id);
        self.stack.extend(kids.iter().rev().copied());
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_doc() -> (Document, NodeId, NodeId) {
        let mut doc = Document::new();
        let html = doc.create_element("HTML", vec![("LANG".into(), "en".into())]);
        doc.append_child(NodeId::DOCUMENT, html);
        let body = doc.create_element("body", vec![]);
        doc.append_child(html, body);
        (doc, html, body)
    }

    #[test]
    fn names_are_lowercased() {
        let (doc, html, _) = small_doc();
        assert_eq!(doc.tag_name(html), Some("html"));
        assert_eq!(doc.attr(html, "lang"), Some("en"));
        assert_eq!(doc.attr(html, "LANG"), Some("en"));
    }

    #[test]
    fn parent_child_links() {
        let (doc, html, body) = small_doc();
        assert_eq!(doc.parent(body), Some(html));
        assert_eq!(doc.parent(html), Some(NodeId::DOCUMENT));
        assert_eq!(doc.parent(NodeId::DOCUMENT), None);
        assert_eq!(doc.children(html), &[body]);
    }

    #[test]
    #[should_panic(expected = "already attached")]
    fn double_append_panics() {
        let (mut doc, html, body) = small_doc();
        doc.append_child(html, body);
    }

    #[test]
    fn preorder_is_document_order() {
        let (mut doc, _, body) = small_doc();
        let p1 = doc.create_element("p", vec![]);
        doc.append_child(body, p1);
        let t1 = doc.create_text("one");
        doc.append_child(p1, t1);
        let p2 = doc.create_element("p", vec![]);
        doc.append_child(body, p2);
        let names: Vec<String> = doc.preorder_all().map(|n| doc.node_name(n).to_string()).collect();
        assert_eq!(names, ["#document", "html", "body", "p", "#text", "p"]);
    }

    #[test]
    fn text_content_concatenates() {
        let (mut doc, html, body) = small_doc();
        let t1 = doc.create_text("a");
        doc.append_child(body, t1);
        let b = doc.create_element("b", vec![]);
        doc.append_child(body, b);
        let t2 = doc.create_text("c");
        doc.append_child(b, t2);
        assert_eq!(doc.text_content(html), "ac");
    }

    #[test]
    fn set_attr_overwrites_or_adds() {
        let (mut doc, html, _) = small_doc();
        doc.set_attr(html, "lang", "fr");
        assert_eq!(doc.attr(html, "lang"), Some("fr"));
        doc.set_attr(html, "data-x", "1");
        assert_eq!(doc.attr(html, "data-x"), Some("1"));
    }

    #[test]
    fn depth_and_context() {
        let (mut doc, html, body) = small_doc();
        let p = doc.create_element("p", vec![]);
        doc.append_child(body, p);
        let t = doc.create_text("x");
        doc.append_child(p, t);
        assert_eq!(doc.depth(NodeId::DOCUMENT), 0);
        assert_eq!(doc.depth(html), 1);
        assert_eq!(doc.depth(t), 4);
        assert_eq!(doc.context_path(t), "html:body:p");
        assert_eq!(doc.max_depth(), 4);
    }

    #[test]
    fn element_by_id_lookup() {
        let (mut doc, _, body) = small_doc();
        let d = doc.create_element("div", vec![("id".into(), "main".into())]);
        doc.append_child(body, d);
        assert_eq!(doc.element_by_id("main"), Some(d));
        assert_eq!(doc.element_by_id("nope"), None);
    }

    #[test]
    fn find_all_collects_in_order() {
        let (mut doc, _, body) = small_doc();
        for _ in 0..3 {
            let d = doc.create_element("div", vec![]);
            doc.append_child(body, d);
        }
        assert_eq!(doc.find_all(NodeId::DOCUMENT, "div").len(), 3);
        assert_eq!(doc.find_all(NodeId::DOCUMENT, "table").len(), 0);
    }
}
