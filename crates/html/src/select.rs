//! A small CSS-selector engine over the DOM.
//!
//! Supports the selector subset that covers practical DOM inspection in
//! tests, examples and extensions:
//!
//! * type selectors (`div`), the universal selector (`*`);
//! * id (`#main`), class (`.ad`), and attribute selectors (`[href]`,
//!   `[type=hidden]`);
//! * compound selectors (`div.ad#top[hidden]`);
//! * descendant combinators (`div p`) and child combinators (`div > p`);
//! * comma-separated selector lists (`h1, h2`).
//!
//! # Example
//!
//! ```
//! use cp_html::{parse_document, select::select};
//!
//! let doc = parse_document(r#"<div id=a class="x y"><p>one</p><span><p>two</p></span></div>"#);
//! assert_eq!(select(&doc, "div p").unwrap().len(), 2);
//! assert_eq!(select(&doc, "div > p").unwrap().len(), 1);
//! assert_eq!(select(&doc, "#a.x").unwrap().len(), 1);
//! assert!(select(&doc, "p, span").unwrap().len() == 3);
//! ```

use std::fmt;

use crate::dom::{Document, NodeId};

/// Error returned by [`parse_selector`] / [`select`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSelectorError {
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseSelectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid selector: {}", self.message)
    }
}

impl std::error::Error for ParseSelectorError {}

fn err(message: impl Into<String>) -> ParseSelectorError {
    ParseSelectorError { message: message.into() }
}

/// One simple selector: `tag#id.class1.class2[attr=value]`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Simple {
    tag: Option<String>,
    id: Option<String>,
    classes: Vec<String>,
    attrs: Vec<(String, Option<String>)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Combinator {
    Descendant,
    Child,
}

/// A parsed selector list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selector {
    // Each alternative is a chain: simple (combinator simple)*.
    alternatives: Vec<Vec<(Combinator, Simple)>>,
}

/// Parses a selector list.
///
/// # Errors
///
/// Returns [`ParseSelectorError`] for empty selectors or malformed parts.
pub fn parse_selector(input: &str) -> Result<Selector, ParseSelectorError> {
    let mut alternatives = Vec::new();
    for alt in input.split(',') {
        let alt = alt.trim();
        if alt.is_empty() {
            return Err(err("empty selector alternative"));
        }
        let mut chain = Vec::new();
        let mut pending = Combinator::Descendant;
        let mut expect_simple = true;
        for token in tokenize_selector(alt) {
            match token.as_str() {
                ">" => {
                    if expect_simple {
                        return Err(err("misplaced '>'"));
                    }
                    pending = Combinator::Child;
                    expect_simple = true;
                }
                t => {
                    chain.push((pending, parse_simple(t)?));
                    pending = Combinator::Descendant;
                    expect_simple = false;
                }
            }
        }
        if expect_simple || chain.is_empty() {
            return Err(err("selector ends with a combinator"));
        }
        alternatives.push(chain);
    }
    Ok(Selector { alternatives })
}

fn tokenize_selector(s: &str) -> Vec<String> {
    // Split on whitespace but keep '>' as its own token.
    let mut out = Vec::new();
    for part in s.split_whitespace() {
        if part == ">" {
            out.push(">".to_string());
            continue;
        }
        let mut rest = part;
        while let Some(pos) = rest.find('>') {
            if pos > 0 {
                out.push(rest[..pos].to_string());
            }
            out.push(">".to_string());
            rest = &rest[pos + 1..];
        }
        if !rest.is_empty() {
            out.push(rest.to_string());
        }
    }
    out
}

fn parse_simple(token: &str) -> Result<Simple, ParseSelectorError> {
    let mut simple = Simple::default();
    let bytes = token.as_bytes();
    let mut i = 0;
    // Leading tag or universal.
    let start = i;
    while i < bytes.len() && !matches!(bytes[i], b'#' | b'.' | b'[') {
        i += 1;
    }
    if i > start {
        let tag = &token[start..i];
        if tag != "*" {
            simple.tag = Some(tag.to_ascii_lowercase());
        }
    }
    while i < bytes.len() {
        match bytes[i] {
            b'#' => {
                i += 1;
                let start = i;
                while i < bytes.len() && !matches!(bytes[i], b'#' | b'.' | b'[') {
                    i += 1;
                }
                if start == i {
                    return Err(err("empty id"));
                }
                simple.id = Some(token[start..i].to_string());
            }
            b'.' => {
                i += 1;
                let start = i;
                while i < bytes.len() && !matches!(bytes[i], b'#' | b'.' | b'[') {
                    i += 1;
                }
                if start == i {
                    return Err(err("empty class"));
                }
                simple.classes.push(token[start..i].to_string());
            }
            b'[' => {
                let end = token[i..].find(']').ok_or_else(|| err("unterminated '['"))?;
                let body = &token[i + 1..i + end];
                if body.is_empty() {
                    return Err(err("empty attribute selector"));
                }
                match body.split_once('=') {
                    Some((k, v)) => simple
                        .attrs
                        .push((k.to_ascii_lowercase(), Some(v.trim_matches('"').to_string()))),
                    None => simple.attrs.push((body.to_ascii_lowercase(), None)),
                }
                i += end + 1;
            }
            _ => return Err(err(format!("unexpected byte in selector {token:?}"))),
        }
    }
    Ok(simple)
}

fn matches_simple(doc: &Document, node: NodeId, simple: &Simple) -> bool {
    let Some(tag) = doc.tag_name(node) else { return false };
    if let Some(want) = &simple.tag {
        if tag != want {
            return false;
        }
    }
    if let Some(id) = &simple.id {
        if doc.attr(node, "id") != Some(id.as_str()) {
            return false;
        }
    }
    if !simple.classes.is_empty() {
        let Some(class) = doc.attr(node, "class") else { return false };
        let tokens: Vec<&str> = class.split_whitespace().collect();
        if !simple.classes.iter().all(|c| tokens.contains(&c.as_str())) {
            return false;
        }
    }
    for (name, value) in &simple.attrs {
        match (doc.attr(node, name), value) {
            (None, _) => return false,
            (Some(_), None) => {}
            (Some(actual), Some(want)) => {
                if actual != want {
                    return false;
                }
            }
        }
    }
    true
}

fn matches_chain(doc: &Document, node: NodeId, chain: &[(Combinator, Simple)]) -> bool {
    let (last_comb, last_simple) = chain.last().expect("chain never empty");
    if !matches_simple(doc, node, last_simple) {
        return false;
    }
    let rest = &chain[..chain.len() - 1];
    if rest.is_empty() {
        return true;
    }
    match last_comb {
        Combinator::Child => doc.parent(node).is_some_and(|p| matches_chain(doc, p, rest)),
        Combinator::Descendant => {
            let mut cur = doc.parent(node);
            while let Some(p) = cur {
                if matches_chain(doc, p, rest) {
                    return true;
                }
                cur = doc.parent(p);
            }
            false
        }
    }
}

impl Selector {
    /// Whether `node` matches this selector.
    pub fn matches(&self, doc: &Document, node: NodeId) -> bool {
        self.alternatives.iter().any(|chain| matches_chain(doc, node, chain))
    }
}

/// Selects every element in document order matching the selector.
///
/// # Errors
///
/// Returns [`ParseSelectorError`] if the selector cannot be parsed.
pub fn select(doc: &Document, selector: &str) -> Result<Vec<NodeId>, ParseSelectorError> {
    let sel = parse_selector(selector)?;
    Ok(doc.preorder_all().filter(|&n| sel.matches(doc, n)).collect())
}

/// Selects the first matching element in document order.
///
/// # Errors
///
/// Returns [`ParseSelectorError`] if the selector cannot be parsed.
pub fn select_first(doc: &Document, selector: &str) -> Result<Option<NodeId>, ParseSelectorError> {
    let sel = parse_selector(selector)?;
    Ok(doc.preorder_all().find(|&n| sel.matches(doc, n)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    fn doc() -> Document {
        parse_document(
            r#"<div id="top" class="wrap outer">
                 <p class="lead">intro</p>
                 <div class="ad"><p>buy</p></div>
                 <ul><li class="item"><a href="/x">link</a></li><li class="item sel">two</li></ul>
                 <input type="hidden" name="t">
               </div>"#,
        )
    }

    #[test]
    fn tag_and_universal() {
        let d = doc();
        assert_eq!(select(&d, "p").unwrap().len(), 2);
        assert_eq!(select(&d, "li").unwrap().len(), 2);
        let all = select(&d, "*").unwrap();
        assert!(all.len() > 8, "universal matches every element");
    }

    #[test]
    fn id_and_class() {
        let d = doc();
        assert_eq!(select(&d, "#top").unwrap().len(), 1);
        assert_eq!(select(&d, ".item").unwrap().len(), 2);
        assert_eq!(select(&d, ".item.sel").unwrap().len(), 1);
        assert_eq!(select(&d, "div.wrap.outer#top").unwrap().len(), 1);
        assert_eq!(select(&d, ".missing").unwrap().len(), 0);
    }

    #[test]
    fn attribute_selectors() {
        let d = doc();
        assert_eq!(select(&d, "[href]").unwrap().len(), 1);
        assert_eq!(select(&d, "input[type=hidden]").unwrap().len(), 1);
        assert_eq!(select(&d, "input[type=text]").unwrap().len(), 0);
        assert_eq!(select(&d, r#"[type="hidden"]"#).unwrap().len(), 1);
    }

    #[test]
    fn descendant_and_child() {
        let d = doc();
        assert_eq!(select(&d, "div p").unwrap().len(), 2);
        assert_eq!(select(&d, "#top > p").unwrap().len(), 1);
        assert_eq!(select(&d, "ul > li > a").unwrap().len(), 1);
        assert_eq!(select(&d, "ul > a").unwrap().len(), 0);
        assert_eq!(select(&d, ".ad p").unwrap().len(), 1);
    }

    #[test]
    fn selector_lists() {
        let d = doc();
        assert_eq!(select(&d, "a, input").unwrap().len(), 2);
        assert_eq!(select(&d, "p, .item").unwrap().len(), 4);
    }

    #[test]
    fn select_first_in_document_order() {
        let d = doc();
        let first = select_first(&d, "li").unwrap().unwrap();
        assert_eq!(d.attr(first, "class"), Some("item"));
        assert!(select_first(&d, "table").unwrap().is_none());
    }

    #[test]
    fn compact_child_combinator() {
        let d = doc();
        assert_eq!(select(&d, "ul>li").unwrap().len(), 2);
    }

    #[test]
    fn invalid_selectors_rejected() {
        let d = doc();
        for bad in ["", " ", ",p", "p >", "> p", "div[unclosed", "p..x", "#"] {
            assert!(select(&d, bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn selector_reuse() {
        let d = doc();
        let sel = parse_selector("li.item").unwrap();
        let hits = d.preorder_all().filter(|&n| sel.matches(&d, n)).count();
        assert_eq!(hits, 2);
    }
}
