//! A forgiving, HTML5-flavoured streaming tokenizer.
//!
//! The tokenizer turns arbitrary input into a flat stream of [`Token`]s and
//! **never fails**: malformed markup degrades into text or bogus comments,
//! mirroring the error-recovery behaviour real browser parsers exhibit. This
//! matters for CookiePicker because both page versions must be tokenized
//! identically, malformed or not (paper §3.2, step 3).
//!
//! Raw-text elements (`script`, `style`, `textarea`, `title`) are handled as
//! in browsers: after their start tag, everything up to the matching
//! case-insensitive end tag is a single text token with no entity decoding
//! (entities *are* decoded for `textarea`/`title`, per spec, but we keep the
//! raw bytes for scripts and styles).

use crate::entities::decode_entities;

/// An attribute parsed from a start tag: lower-cased name, decoded value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Lower-cased attribute name.
    pub name: String,
    /// Attribute value with entities decoded; empty for valueless attributes.
    pub value: String,
}

/// A lexical token produced by [`tokenize`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `<!DOCTYPE name …>`.
    Doctype(
        /// The doctype name (lower-cased).
        String,
    ),
    /// `<name attr="…" …>` or `<name … />`.
    StartTag {
        /// Lower-cased tag name.
        name: String,
        /// Attributes in source order.
        attrs: Vec<Attribute>,
        /// Whether the tag ended with `/>`.
        self_closing: bool,
    },
    /// `</name>`.
    EndTag(
        /// Lower-cased tag name.
        String,
    ),
    /// Character data between tags, entities decoded.
    Text(
        /// The decoded text.
        String,
    ),
    /// `<!-- … -->` (body without delimiters).
    Comment(
        /// The comment body.
        String,
    ),
}

/// Tokenizes an HTML document. Never fails; any input produces tokens.
///
/// ```
/// use cp_html::{tokenize, Token};
/// let toks = tokenize("<p class=a>hi</p>");
/// assert_eq!(toks.len(), 3);
/// assert!(matches!(&toks[0], Token::StartTag { name, .. } if name == "p"));
/// assert!(matches!(&toks[1], Token::Text(t) if t == "hi"));
/// assert!(matches!(&toks[2], Token::EndTag(n) if n == "p"));
/// ```
pub fn tokenize(input: &str) -> Vec<Token> {
    Tokenizer::new(input).run()
}

/// Element names whose content is raw text (no tags recognized inside).
fn is_raw_text_element(name: &str) -> bool {
    matches!(name, "script" | "style" | "textarea" | "title" | "xmp" | "noframes")
}

struct Tokenizer<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    tokens: Vec<Token>,
}

impl<'a> Tokenizer<'a> {
    fn new(input: &'a str) -> Self {
        Tokenizer { input, bytes: input.as_bytes(), pos: 0, tokens: Vec::new() }
    }

    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            self.data_state();
        }
        self.tokens
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with_ci(&self, s: &str) -> bool {
        let end = self.pos + s.len();
        end <= self.bytes.len() && self.bytes[self.pos..end].eq_ignore_ascii_case(s.as_bytes())
    }

    fn data_state(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'<' {
            self.pos += 1;
        }
        if self.pos > start {
            let text = decode_entities(&self.input[start..self.pos]);
            self.emit_text(text);
        }
        if self.pos >= self.bytes.len() {
            return;
        }
        // At '<'.
        match self.bytes.get(self.pos + 1) {
            Some(b'/') => self.end_tag_state(),
            Some(b'!') => self.markup_declaration_state(),
            Some(b'?') => self.bogus_comment_state(self.pos + 1),
            Some(c) if c.is_ascii_alphabetic() => self.start_tag_state(),
            _ => {
                // Lone '<': literal text.
                self.emit_text("<".to_string());
                self.pos += 1;
            }
        }
    }

    fn emit_text(&mut self, text: String) {
        if text.is_empty() {
            return;
        }
        if let Some(Token::Text(prev)) = self.tokens.last_mut() {
            prev.push_str(&text);
        } else {
            self.tokens.push(Token::Text(text));
        }
    }

    fn start_tag_state(&mut self) {
        self.pos += 1; // consume '<'
        let name = self.read_tag_name();
        let mut attrs = Vec::new();
        let mut self_closing = false;
        loop {
            self.skip_whitespace();
            match self.peek() {
                None => break,
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() == Some(b'>') {
                        self.pos += 1;
                        self_closing = true;
                        break;
                    }
                    // stray '/': ignore, continue attribute scanning
                }
                Some(_) => {
                    if let Some(attr) = self.read_attribute() {
                        // First occurrence wins, as in browsers.
                        if !attrs.iter().any(|a: &Attribute| a.name == attr.name) {
                            attrs.push(attr);
                        }
                    }
                }
            }
        }
        let raw = is_raw_text_element(&name);
        self.tokens.push(Token::StartTag { name: name.clone(), attrs, self_closing });
        if raw && !self_closing {
            self.raw_text_state(&name);
        }
    }

    fn raw_text_state(&mut self, element: &str) {
        // Scan for `</element` case-insensitively.
        let close = format!("</{element}");
        let start = self.pos;
        let mut end = self.bytes.len();
        let mut i = self.pos;
        while i < self.bytes.len() {
            if self.bytes[i] == b'<' {
                let t = Tokenizer { input: self.input, bytes: self.bytes, pos: i, tokens: vec![] };
                if t.starts_with_ci(&close) {
                    end = i;
                    break;
                }
            }
            i += 1;
        }
        let raw = &self.input[start..end];
        let text = if matches!(element, "textarea" | "title") {
            decode_entities(raw)
        } else {
            raw.to_string()
        };
        if !text.is_empty() {
            self.tokens.push(Token::Text(text));
        }
        self.pos = end;
        if end < self.bytes.len() {
            self.end_tag_state();
        }
    }

    fn end_tag_state(&mut self) {
        self.pos += 2; // consume '</'
        if !self.peek().is_some_and(|c| c.is_ascii_alphabetic()) {
            // '</>' or '</ ': bogus comment per spec; we skip to '>'.
            self.bogus_comment_state(self.pos);
            return;
        }
        let name = self.read_tag_name();
        // Skip anything up to '>'.
        while let Some(c) = self.peek() {
            self.pos += 1;
            if c == b'>' {
                break;
            }
        }
        self.tokens.push(Token::EndTag(name));
    }

    fn markup_declaration_state(&mut self) {
        // At '<!'.
        if self.starts_with_ci("<!--") {
            self.comment_state();
        } else if self.starts_with_ci("<!doctype") {
            self.doctype_state();
        } else if self.starts_with_ci("<![CDATA[") {
            self.cdata_state();
        } else {
            self.bogus_comment_state(self.pos + 2);
        }
    }

    fn comment_state(&mut self) {
        self.pos += 4; // consume '<!--'
        let start = self.pos;
        let end = self.input[self.pos..].find("-->").map(|p| self.pos + p);
        match end {
            Some(e) => {
                self.tokens.push(Token::Comment(self.input[start..e].to_string()));
                self.pos = e + 3;
            }
            None => {
                self.tokens.push(Token::Comment(self.input[start..].to_string()));
                self.pos = self.bytes.len();
            }
        }
    }

    fn doctype_state(&mut self) {
        self.pos += "<!doctype".len();
        self.skip_whitespace();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && !self.bytes[self.pos].is_ascii_whitespace()
            && self.bytes[self.pos] != b'>'
        {
            self.pos += 1;
        }
        let name = self.input[start..self.pos].to_ascii_lowercase();
        while let Some(c) = self.peek() {
            self.pos += 1;
            if c == b'>' {
                break;
            }
        }
        self.tokens.push(Token::Doctype(name));
    }

    fn cdata_state(&mut self) {
        self.pos += "<![CDATA[".len();
        let start = self.pos;
        let end = self.input[self.pos..].find("]]>").map(|p| self.pos + p);
        match end {
            Some(e) => {
                self.emit_text(self.input[start..e].to_string());
                self.pos = e + 3;
            }
            None => {
                self.emit_text(self.input[start..].to_string());
                self.pos = self.bytes.len();
            }
        }
    }

    fn bogus_comment_state(&mut self, content_start: usize) {
        // Consume up to and including '>', emit as comment.
        let mut i = content_start;
        while i < self.bytes.len() && self.bytes[i] != b'>' {
            i += 1;
        }
        self.tokens.push(Token::Comment(self.input[content_start..i].to_string()));
        self.pos = (i + 1).min(self.bytes.len());
    }

    fn read_tag_name(&mut self) -> String {
        let start = self.pos;
        while self.pos < self.bytes.len()
            && !self.bytes[self.pos].is_ascii_whitespace()
            && !matches!(self.bytes[self.pos], b'>' | b'/')
        {
            self.pos += 1;
        }
        self.input[start..self.pos].to_ascii_lowercase()
    }

    fn skip_whitespace(&mut self) {
        while self.peek().is_some_and(|c| c.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn read_attribute(&mut self) -> Option<Attribute> {
        let start = self.pos;
        while self.pos < self.bytes.len()
            && !self.bytes[self.pos].is_ascii_whitespace()
            && !matches!(self.bytes[self.pos], b'=' | b'>' | b'/')
        {
            self.pos += 1;
        }
        if self.pos == start {
            // Unexpected byte (e.g. '=' with no name): skip it to progress.
            self.pos += 1;
            return None;
        }
        let name = self.input[start..self.pos].to_ascii_lowercase();
        self.skip_whitespace();
        if self.peek() != Some(b'=') {
            return Some(Attribute { name, value: String::new() });
        }
        self.pos += 1; // consume '='
        self.skip_whitespace();
        let value = match self.peek() {
            Some(q @ (b'"' | b'\'')) => {
                self.pos += 1;
                let vstart = self.pos;
                while self.pos < self.bytes.len() && self.bytes[self.pos] != q {
                    self.pos += 1;
                }
                let raw = &self.input[vstart..self.pos];
                if self.pos < self.bytes.len() {
                    self.pos += 1; // closing quote
                }
                decode_entities(raw)
            }
            _ => {
                let vstart = self.pos;
                while self.pos < self.bytes.len()
                    && !self.bytes[self.pos].is_ascii_whitespace()
                    && self.bytes[self.pos] != b'>'
                {
                    self.pos += 1;
                }
                decode_entities(&self.input[vstart..self.pos])
            }
        };
        Some(Attribute { name, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(name: &str) -> Token {
        Token::StartTag { name: name.into(), attrs: vec![], self_closing: false }
    }

    #[test]
    fn simple_tags_and_text() {
        assert_eq!(
            tokenize("<p>hi</p>"),
            vec![start("p"), Token::Text("hi".into()), Token::EndTag("p".into())]
        );
    }

    #[test]
    fn tag_names_lowercased() {
        assert_eq!(tokenize("<DIV></DiV>"), vec![start("div"), Token::EndTag("div".into())]);
    }

    #[test]
    fn attributes_quoted_unquoted_valueless() {
        let toks = tokenize(r#"<input type="text" value='a b' checked data-n=5>"#);
        let Token::StartTag { attrs, .. } = &toks[0] else { panic!("expected start tag") };
        assert_eq!(attrs.len(), 4);
        assert_eq!(attrs[0], Attribute { name: "type".into(), value: "text".into() });
        assert_eq!(attrs[1], Attribute { name: "value".into(), value: "a b".into() });
        assert_eq!(attrs[2], Attribute { name: "checked".into(), value: "".into() });
        assert_eq!(attrs[3], Attribute { name: "data-n".into(), value: "5".into() });
    }

    #[test]
    fn duplicate_attributes_first_wins() {
        let toks = tokenize(r#"<a href="one" href="two">"#);
        let Token::StartTag { attrs, .. } = &toks[0] else { panic!() };
        assert_eq!(attrs.len(), 1);
        assert_eq!(attrs[0].value, "one");
    }

    #[test]
    fn self_closing() {
        let toks = tokenize("<br/><img src=x />");
        assert!(matches!(&toks[0], Token::StartTag { self_closing: true, .. }));
        assert!(matches!(&toks[1], Token::StartTag { self_closing: true, .. }));
    }

    #[test]
    fn entities_in_text_and_attrs() {
        let toks = tokenize(r#"<a title="A &amp; B">x &lt; y</a>"#);
        let Token::StartTag { attrs, .. } = &toks[0] else { panic!() };
        assert_eq!(attrs[0].value, "A & B");
        assert_eq!(toks[1], Token::Text("x < y".into()));
    }

    #[test]
    fn comments() {
        let toks = tokenize("a<!-- hidden -->b");
        assert_eq!(
            toks,
            vec![
                Token::Text("a".into()),
                Token::Comment(" hidden ".into()),
                Token::Text("b".into())
            ]
        );
    }

    #[test]
    fn unterminated_comment_consumes_rest() {
        let toks = tokenize("x<!-- never closed");
        assert_eq!(toks[1], Token::Comment(" never closed".into()));
    }

    #[test]
    fn doctype() {
        let toks = tokenize("<!DOCTYPE html><html>");
        assert_eq!(toks[0], Token::Doctype("html".into()));
    }

    #[test]
    fn script_raw_text() {
        let toks = tokenize("<script>if (a < b) { x = '<div>'; }</script>after");
        assert_eq!(toks[1], Token::Text("if (a < b) { x = '<div>'; }".into()));
        assert_eq!(toks[2], Token::EndTag("script".into()));
        assert_eq!(toks[3], Token::Text("after".into()));
    }

    #[test]
    fn script_end_tag_case_insensitive() {
        let toks = tokenize("<script>x</SCRIPT>");
        assert_eq!(toks[1], Token::Text("x".into()));
        assert_eq!(toks[2], Token::EndTag("script".into()));
    }

    #[test]
    fn unterminated_script() {
        let toks = tokenize("<script>var x = 1;");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1], Token::Text("var x = 1;".into()));
    }

    #[test]
    fn title_decodes_entities() {
        let toks = tokenize("<title>A &amp; B</title>");
        assert_eq!(toks[1], Token::Text("A & B".into()));
    }

    #[test]
    fn lone_angle_bracket_is_text() {
        let toks = tokenize("1 < 2");
        assert_eq!(toks, vec![Token::Text("1 < 2".into())]);
    }

    #[test]
    fn bogus_markup_becomes_comment() {
        let toks = tokenize("<?php echo ?>x<!weird>y");
        assert!(matches!(&toks[0], Token::Comment(_)));
        assert_eq!(toks[1], Token::Text("x".into()));
        assert!(matches!(&toks[2], Token::Comment(_)));
        assert_eq!(toks[3], Token::Text("y".into()));
    }

    #[test]
    fn cdata_is_text() {
        let toks = tokenize("<![CDATA[raw <stuff>]]>");
        assert_eq!(toks, vec![Token::Text("raw <stuff>".into())]);
    }

    #[test]
    fn stray_end_tag_slash() {
        let toks = tokenize("</>text");
        assert!(matches!(&toks[0], Token::Comment(_)));
        assert_eq!(toks[1], Token::Text("text".into()));
    }

    #[test]
    fn unterminated_tag_at_eof() {
        let toks = tokenize("<div class=");
        assert!(matches!(&toks[0], Token::StartTag { name, .. } if name == "div"));
    }

    #[test]
    fn never_panics_on_garbage() {
        for garbage in [
            "<",
            "</",
            "<!",
            "<!-",
            "<a b=\"",
            "<a b='",
            "\u{0}<>\u{ffff}",
            "<<<>>>",
            "&#;",
            "&#x;",
            "<a/ b>",
            "< a>",
            "<a =>",
            "<!doctype",
            "<![CDATA[",
        ] {
            let _ = tokenize(garbage);
        }
    }

    #[test]
    fn adjacent_text_coalesced() {
        let toks = tokenize("a&amp;b");
        assert_eq!(toks, vec![Token::Text("a&b".into())]);
    }
}
