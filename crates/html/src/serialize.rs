//! DOM-to-HTML serialization.

use crate::dom::{Document, NodeData, NodeId};
use crate::entities::{escape_attr, escape_text};

fn is_void(name: &str) -> bool {
    matches!(
        name,
        "area"
            | "base"
            | "br"
            | "col"
            | "embed"
            | "hr"
            | "img"
            | "input"
            | "link"
            | "meta"
            | "param"
            | "source"
            | "track"
            | "wbr"
    )
}

fn is_raw_text(name: &str) -> bool {
    matches!(name, "script" | "style")
}

/// Serializes the subtree rooted at `id` back to HTML text.
///
/// Text nodes are entity-escaped except inside `<script>`/`<style>`;
/// void elements are emitted without end tags.
///
/// ```
/// use cp_html::{parse_document, serialize, NodeId};
/// let doc = parse_document("<p>a &amp; b</p>");
/// let html = serialize(&doc, NodeId::DOCUMENT);
/// assert!(html.contains("<p>a &amp; b</p>"));
/// ```
pub fn serialize(doc: &Document, id: NodeId) -> String {
    let mut out = String::new();
    write_node(doc, id, &mut out);
    out
}

fn write_node(doc: &Document, id: NodeId, out: &mut String) {
    match doc.data(id) {
        NodeData::Document => {
            for &c in doc.children(id) {
                write_node(doc, c, out);
            }
        }
        NodeData::Doctype { name } => {
            out.push_str("<!DOCTYPE ");
            out.push_str(name);
            out.push('>');
        }
        NodeData::Comment(text) => {
            out.push_str("<!--");
            out.push_str(text);
            out.push_str("-->");
        }
        NodeData::Text(text) => {
            let parent_raw =
                doc.parent(id).and_then(|p| doc.tag_name(p).map(is_raw_text)).unwrap_or(false);
            if parent_raw {
                out.push_str(text);
            } else {
                out.push_str(&escape_text(text));
            }
        }
        NodeData::Element { name, attrs } => {
            out.push('<');
            out.push_str(name);
            for (k, v) in attrs {
                out.push(' ');
                out.push_str(k);
                if !v.is_empty() {
                    out.push_str("=\"");
                    out.push_str(&escape_attr(v));
                    out.push('"');
                }
            }
            out.push('>');
            if is_void(name) {
                return;
            }
            for &c in doc.children(id) {
                write_node(doc, c, out);
            }
            out.push_str("</");
            out.push_str(name);
            out.push('>');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    #[test]
    fn round_trip_simple() {
        let doc = parse_document("<!DOCTYPE html><html><head></head><body><p>x</p></body></html>");
        let html = serialize(&doc, NodeId::DOCUMENT);
        assert_eq!(html, "<!DOCTYPE html><html><head></head><body><p>x</p></body></html>");
    }

    #[test]
    fn void_elements_not_closed() {
        let doc = parse_document("<body><br><img src=x></body>");
        let html = serialize(&doc, NodeId::DOCUMENT);
        assert!(html.contains("<br>"));
        assert!(html.contains("<img src=\"x\">"));
        assert!(!html.contains("</br>"));
        assert!(!html.contains("</img>"));
    }

    #[test]
    fn text_escaped_but_script_raw() {
        let doc = parse_document("<body><p>a&lt;b</p><script>if(a<b){}</script></body>");
        let html = serialize(&doc, NodeId::DOCUMENT);
        assert!(html.contains("a&lt;b"));
        assert!(html.contains("if(a<b){}"));
    }

    #[test]
    fn attrs_escaped() {
        let doc = parse_document(r#"<div title="a &quot;b&quot;">x</div>"#);
        let html = serialize(&doc, NodeId::DOCUMENT);
        assert!(html.contains(r#"title="a &quot;b&quot;""#));
    }

    #[test]
    fn valueless_attr_bare() {
        let doc = parse_document("<input disabled>");
        let html = serialize(&doc, NodeId::DOCUMENT);
        assert!(html.contains("<input disabled>"));
    }

    #[test]
    fn reparse_stability() {
        // serialize(parse(x)) must be a fixed point under reparsing.
        let inputs = [
            "<p>one<p>two",
            "<ul><li>a<li>b</ul>",
            "<table><tr><td>1<td>2</table>",
            "<div class=c><!-- k --><b>t</b></div>",
        ];
        for input in inputs {
            let d1 = parse_document(input);
            let s1 = serialize(&d1, NodeId::DOCUMENT);
            let d2 = parse_document(&s1);
            let s2 = serialize(&d2, NodeId::DOCUMENT);
            assert_eq!(s1, s2, "not a fixed point for {input:?}");
        }
    }

    #[test]
    fn comments_round_trip() {
        let doc = parse_document("<body><!--hello--></body>");
        assert!(serialize(&doc, NodeId::DOCUMENT).contains("<!--hello-->"));
    }
}
