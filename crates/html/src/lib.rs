//! A browser-grade-enough HTML parsing stack for the CookiePicker
//! reproduction.
//!
//! CookiePicker (DSN 2007) compares two versions of a Web page by comparing
//! their **DOM trees**, and the paper stresses that both versions must be
//! built "using the same HTML parser of the Web browser" so that malformed
//! pages are treated identically (§3.2, step 3). This crate is that parser:
//!
//! * [`tokenizer`] — an HTML5-flavoured streaming tokenizer that never fails:
//!   any byte sequence produces a token stream (tags, text, comments,
//!   doctype), with raw-text handling for `<script>`/`<style>`/`<title>`/
//!   `<textarea>`.
//! * [`parser`] — a forgiving tree builder: implied `<html>/<head>/<body>`,
//!   void elements, automatic closing of `<p>`, `<li>`, table sections and
//!   friends, recovery from mis-nested end tags.
//! * [`dom`] — an arena [`Document`] of
//!   rooted-labeled-ordered nodes with traversal, query and text-extraction
//!   helpers.
//! * [`visibility`] — the paper's *visual effect* classification: which nodes
//!   can influence what a user perceives (comments, scripts, `<head>`
//!   content, `display:none` subtrees do not).
//! * [`serialize`](serialize::serialize) — DOM back to HTML text.
//! * [`entities`] — named/numeric character reference decoding and escaping.
//!
//! # Example
//!
//! ```
//! use cp_html::parse_document;
//!
//! let doc = parse_document("<p>Hello <b>world</b><p>unclosed paragraphs are fine");
//! let body = doc.body().expect("implied body");
//! assert_eq!(doc.element_children(body).len(), 2); // two <p> elements
//! assert_eq!(doc.text_content(body), "Hello worldunclosed paragraphs are fine");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dom;
pub mod entities;
pub mod parser;
pub mod select;
pub mod serialize;
pub mod text;
pub mod tokenizer;
pub mod visibility;

pub use dom::{Document, NodeData, NodeId};
pub use parser::parse_document;
pub use select::{select, select_first, Selector};
pub use serialize::serialize;
pub use text::inner_text;
pub use tokenizer::{tokenize, Attribute, Token};
pub use visibility::{element_visible, is_invisible_element_name, is_node_visible};
