//! Character-reference decoding and escaping.
//!
//! Supports the named references that actually occur in real-world markup
//! plus decimal/hexadecimal numeric references. Unknown references are left
//! verbatim, as browsers do for unterminated/unrecognized entities.

/// Named character references recognized by [`decode_entities`].
///
/// The table covers the HTML 4 core set (the 2007-era Web the paper crawled)
/// plus the most common aliases. Entries are `(name, replacement)` where the
/// name excludes `&` and `;`.
const NAMED: &[(&str, &str)] = &[
    ("amp", "&"),
    ("lt", "<"),
    ("gt", ">"),
    ("quot", "\""),
    ("apos", "'"),
    ("nbsp", "\u{a0}"),
    ("copy", "\u{a9}"),
    ("reg", "\u{ae}"),
    ("trade", "\u{2122}"),
    ("hellip", "\u{2026}"),
    ("mdash", "\u{2014}"),
    ("ndash", "\u{2013}"),
    ("lsquo", "\u{2018}"),
    ("rsquo", "\u{2019}"),
    ("ldquo", "\u{201c}"),
    ("rdquo", "\u{201d}"),
    ("bull", "\u{2022}"),
    ("middot", "\u{b7}"),
    ("sect", "\u{a7}"),
    ("para", "\u{b6}"),
    ("plusmn", "\u{b1}"),
    ("times", "\u{d7}"),
    ("divide", "\u{f7}"),
    ("frac12", "\u{bd}"),
    ("frac14", "\u{bc}"),
    ("frac34", "\u{be}"),
    ("sup1", "\u{b9}"),
    ("sup2", "\u{b2}"),
    ("sup3", "\u{b3}"),
    ("deg", "\u{b0}"),
    ("cent", "\u{a2}"),
    ("pound", "\u{a3}"),
    ("yen", "\u{a5}"),
    ("euro", "\u{20ac}"),
    ("curren", "\u{a4}"),
    ("laquo", "\u{ab}"),
    ("raquo", "\u{bb}"),
    ("iexcl", "\u{a1}"),
    ("iquest", "\u{bf}"),
    ("szlig", "\u{df}"),
    ("agrave", "\u{e0}"),
    ("aacute", "\u{e1}"),
    ("acirc", "\u{e2}"),
    ("atilde", "\u{e3}"),
    ("auml", "\u{e4}"),
    ("aring", "\u{e5}"),
    ("aelig", "\u{e6}"),
    ("ccedil", "\u{e7}"),
    ("egrave", "\u{e8}"),
    ("eacute", "\u{e9}"),
    ("ecirc", "\u{ea}"),
    ("euml", "\u{eb}"),
    ("igrave", "\u{ec}"),
    ("iacute", "\u{ed}"),
    ("icirc", "\u{ee}"),
    ("iuml", "\u{ef}"),
    ("ntilde", "\u{f1}"),
    ("ograve", "\u{f2}"),
    ("oacute", "\u{f3}"),
    ("ocirc", "\u{f4}"),
    ("otilde", "\u{f5}"),
    ("ouml", "\u{f6}"),
    ("oslash", "\u{f8}"),
    ("ugrave", "\u{f9}"),
    ("uacute", "\u{fa}"),
    ("ucirc", "\u{fb}"),
    ("uuml", "\u{fc}"),
    ("yacute", "\u{fd}"),
    ("yuml", "\u{ff}"),
    ("alpha", "\u{3b1}"),
    ("beta", "\u{3b2}"),
    ("gamma", "\u{3b3}"),
    ("delta", "\u{3b4}"),
    ("pi", "\u{3c0}"),
    ("sigma", "\u{3c3}"),
    ("omega", "\u{3c9}"),
    ("infin", "\u{221e}"),
    ("ne", "\u{2260}"),
    ("le", "\u{2264}"),
    ("ge", "\u{2265}"),
    ("larr", "\u{2190}"),
    ("uarr", "\u{2191}"),
    ("rarr", "\u{2192}"),
    ("darr", "\u{2193}"),
    ("harr", "\u{2194}"),
    ("spades", "\u{2660}"),
    ("clubs", "\u{2663}"),
    ("hearts", "\u{2665}"),
    ("diams", "\u{2666}"),
];

fn lookup_named(name: &str) -> Option<&'static str> {
    NAMED.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
}

/// Decodes character references (`&amp;`, `&#65;`, `&#x41;`) in `input`.
///
/// Unknown or malformed references are copied through unchanged, matching
/// lenient browser behaviour.
///
/// ```
/// use cp_html::entities::decode_entities;
/// assert_eq!(decode_entities("a &amp; b"), "a & b");
/// assert_eq!(decode_entities("&#65;&#x42;"), "AB");
/// assert_eq!(decode_entities("&bogus; &amp"), "&bogus; &amp");
/// ```
pub fn decode_entities(input: &str) -> String {
    if !input.contains('&') {
        return input.to_string();
    }
    let mut out = String::with_capacity(input.len());
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'&' {
            // Copy the full UTF-8 character.
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&input[i..i + ch_len]);
            i += ch_len;
            continue;
        }
        // Find a terminating ';' within a reasonable window.
        let rest = &input[i + 1..];
        if let Some(semi) = rest.find(';').filter(|&p| p > 0 && p <= 32) {
            let name = &rest[..semi];
            if let Some(decoded) = decode_reference(name) {
                out.push_str(&decoded);
                i += 1 + semi + 1;
                continue;
            }
        }
        out.push('&');
        i += 1;
    }
    out
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn decode_reference(name: &str) -> Option<String> {
    if let Some(num) = name.strip_prefix('#') {
        let code = if let Some(hex) = num.strip_prefix(['x', 'X']) {
            u32::from_str_radix(hex, 16).ok()?
        } else {
            num.parse::<u32>().ok()?
        };
        let ch = char::from_u32(code).unwrap_or('\u{fffd}');
        return Some(ch.to_string());
    }
    // Named references are case-sensitive in HTML5 but legacy pages often use
    // odd casing; we accept an exact match first, then a lowercase fallback.
    lookup_named(name).or_else(|| lookup_named(&name.to_ascii_lowercase())).map(|s| s.to_string())
}

/// Escapes `<`, `>` and `&` for text-node serialization.
///
/// ```
/// use cp_html::entities::escape_text;
/// assert_eq!(escape_text("a < b & c"), "a &lt; b &amp; c");
/// ```
pub fn escape_text(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for c in input.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes attribute values for double-quoted serialization.
///
/// ```
/// use cp_html::entities::escape_attr;
/// assert_eq!(escape_attr("say \"hi\" & go"), "say &quot;hi&quot; &amp; go");
/// ```
pub fn escape_attr(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for c in input.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '<' => out.push_str("&lt;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_entities() {
        assert_eq!(decode_entities("&lt;p&gt;"), "<p>");
        assert_eq!(decode_entities("&quot;x&quot;"), "\"x\"");
        assert_eq!(decode_entities("&nbsp;"), "\u{a0}");
    }

    #[test]
    fn numeric_entities() {
        assert_eq!(decode_entities("&#97;"), "a");
        assert_eq!(decode_entities("&#x61;"), "a");
        assert_eq!(decode_entities("&#X61;"), "a");
    }

    #[test]
    fn invalid_code_point_replaced() {
        assert_eq!(decode_entities("&#xD800;"), "\u{fffd}");
        assert_eq!(decode_entities("&#1114112;"), "\u{fffd}"); // beyond char range → U+FFFD
    }

    #[test]
    fn unknown_left_verbatim() {
        assert_eq!(decode_entities("&unknown;"), "&unknown;");
        assert_eq!(decode_entities("AT&T"), "AT&T");
        assert_eq!(decode_entities("&"), "&");
        assert_eq!(decode_entities("a && b"), "a && b");
    }

    #[test]
    fn no_ampersand_fast_path() {
        assert_eq!(decode_entities("plain text"), "plain text");
    }

    #[test]
    fn multibyte_passthrough() {
        assert_eq!(decode_entities("héllo &amp; wörld 🎉"), "héllo & wörld 🎉");
    }

    #[test]
    fn escape_round_trip() {
        let original = "a < b > c & \"d\"";
        assert_eq!(decode_entities(&escape_text(original)), original);
        assert_eq!(decode_entities(&escape_attr(original)), original);
    }

    #[test]
    fn case_fallback_for_named() {
        assert_eq!(decode_entities("&AMP;"), "&");
        assert_eq!(decode_entities("&NBSP;"), "\u{a0}");
    }
}
