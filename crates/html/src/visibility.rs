//! Visual-effect classification of DOM nodes.
//!
//! The paper's RSTM algorithm (Figure 2, line 5) counts a matched pair only
//! if the nodes "are not leaves and have visual effects": comment nodes and
//! script nodes are excluded because they never affect what a user sees.
//! This module centralizes that judgement so the matcher, the CVCE content
//! extractor, and the synthetic-site generator all agree on it.

use crate::dom::{Document, NodeData, NodeId};

/// Element names that never produce visual output.
///
/// `<head>` and its metadata children are invisible; so are scripts,
/// templates and frames-era fallbacks.
///
/// ```
/// use cp_html::is_invisible_element_name;
/// assert!(is_invisible_element_name("script"));
/// assert!(is_invisible_element_name("style"));
/// assert!(!is_invisible_element_name("div"));
/// ```
pub fn is_invisible_element_name(name: &str) -> bool {
    matches!(
        name,
        "script"
            | "style"
            | "head"
            | "meta"
            | "link"
            | "base"
            | "title"
            | "noscript"
            | "template"
            | "noframes"
            | "param"
    )
}

/// Whether a single node (not considering ancestors) is visible.
///
/// Comments, doctypes, and invisible elements return `false`; text nodes and
/// the document node return `true` (their visibility is decided by their
/// ancestors). Elements carrying `hidden`, `type="hidden"` or an inline
/// `display:none` / `visibility:hidden` style are invisible.
pub fn is_node_visible(doc: &Document, id: NodeId) -> bool {
    match doc.data(id) {
        NodeData::Comment(_) | NodeData::Doctype { .. } => false,
        NodeData::Document | NodeData::Text(_) => true,
        NodeData::Element { name, attrs } => element_visible(name, attrs),
    }
}

/// The element case of [`is_node_visible`], judged from the name and the
/// attribute list directly — one pass over the attributes instead of one
/// scan per interesting attribute, for callers (like the compiled page
/// analysis) that already hold the element data.
///
/// Duplicate attributes follow [`Document::attr`] semantics: the first
/// occurrence of a name wins.
pub fn element_visible(name: &str, attrs: &[(String, String)]) -> bool {
    if is_invisible_element_name(name) {
        return false;
    }
    let (mut hidden, mut ty, mut style) = (false, None, None);
    for (k, v) in attrs {
        match k.as_str() {
            "hidden" => hidden = true,
            "type" if ty.is_none() => ty = Some(v.as_str()),
            "style" if style.is_none() => style = Some(v.as_str()),
            _ => {}
        }
    }
    if hidden {
        return false;
    }
    if name == "input" && ty.is_some_and(|t| t.eq_ignore_ascii_case("hidden")) {
        return false;
    }
    !style.is_some_and(style_hides)
}

/// Whether an inline style declares `display:none` or `visibility:hidden`,
/// judged on the style with all whitespace removed and ASCII case folded —
/// exactly the string `style.to_ascii_lowercase().split_whitespace()
/// .collect::<String>()` would contain, but without building it.
fn style_hides(style: &str) -> bool {
    contains_filtered(style, b"display:none") || contains_filtered(style, b"visibility:hidden")
}

/// Substring search for an ASCII-lowercase `needle` in `style` viewed as a
/// whitespace-stripped, ASCII-lowercased character stream.
fn contains_filtered(style: &str, needle: &[u8]) -> bool {
    let mut stream = style.chars().filter(|c| !c.is_whitespace());
    loop {
        let mut probe = stream.clone();
        let mut matched = 0;
        while matched < needle.len() {
            match probe.next() {
                Some(c) if c.is_ascii() && c.to_ascii_lowercase() as u8 == needle[matched] => {
                    matched += 1;
                }
                Some(_) => break,
                // The stream ran out mid-needle; no later start can fit.
                None => return false,
            }
        }
        if matched == needle.len() {
            return true;
        }
        if stream.next().is_none() {
            return false;
        }
    }
}

/// Whether the node **and all its ancestors** are visible — i.e. whether it
/// can contribute to the rendered page at all.
pub fn is_effectively_visible(doc: &Document, id: NodeId) -> bool {
    let mut cur = Some(id);
    while let Some(n) = cur {
        if !is_node_visible(doc, n) {
            return false;
        }
        cur = doc.parent(n);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    #[test]
    fn scripts_and_comments_invisible() {
        let doc = parse_document("<body><script>x</script><!--c--><p>t</p></body>");
        let script = doc.find_element(NodeId::DOCUMENT, "script").unwrap();
        assert!(!is_node_visible(&doc, script));
        let p = doc.find_element(NodeId::DOCUMENT, "p").unwrap();
        assert!(is_node_visible(&doc, p));
        let body = doc.body().unwrap();
        let comment = doc.children(body)[1];
        assert!(!is_node_visible(&doc, comment));
    }

    #[test]
    fn head_content_invisible() {
        let doc = parse_document("<title>t</title><meta charset=a><body>x</body>");
        let head = doc.head().unwrap();
        assert!(!is_node_visible(&doc, head));
        let title = doc.find_element(NodeId::DOCUMENT, "title").unwrap();
        assert!(!is_node_visible(&doc, title));
    }

    #[test]
    fn hidden_attribute_and_inputs() {
        let doc =
            parse_document(r#"<div hidden>x</div><input type=hidden name=n><input type=text>"#);
        let div = doc.find_element(NodeId::DOCUMENT, "div").unwrap();
        assert!(!is_node_visible(&doc, div));
        let inputs = doc.find_all(NodeId::DOCUMENT, "input");
        assert!(!is_node_visible(&doc, inputs[0]));
        assert!(is_node_visible(&doc, inputs[1]));
    }

    #[test]
    fn inline_display_none() {
        let doc =
            parse_document(r#"<div style="display: none">x</div><div style="color:red">y</div>"#);
        let divs = doc.find_all(NodeId::DOCUMENT, "div");
        assert!(!is_node_visible(&doc, divs[0]));
        assert!(is_node_visible(&doc, divs[1]));
    }

    #[test]
    fn effective_visibility_inherits() {
        let doc = parse_document(r#"<div style="display:none"><p>hidden text</p></div>"#);
        let p = doc.find_element(NodeId::DOCUMENT, "p").unwrap();
        assert!(is_node_visible(&doc, p));
        assert!(!is_effectively_visible(&doc, p));
    }

    #[test]
    fn body_text_effectively_visible() {
        let doc = parse_document("<body><p>seen</p></body>");
        let p = doc.find_element(NodeId::DOCUMENT, "p").unwrap();
        let text = doc.children(p)[0];
        assert!(is_effectively_visible(&doc, text));
    }
}
