//! Parser corpus tests: structure assertions over a gallery of real-world
//! HTML patterns (and pathologies) of the 2007-era Web.

use cp_html::{inner_text, parse_document, select, serialize, NodeId};

fn tags(html: &str) -> Vec<String> {
    let doc = parse_document(html);
    doc.preorder_all().filter_map(|n| doc.tag_name(n).map(str::to_string)).collect()
}

#[test]
fn classic_table_layout_page() {
    // The table-based layouts of the era.
    let doc = parse_document(
        r##"<html><body bgcolor="#ffffff">
        <table width="100%" border=0 cellpadding=0>
          <tr><td colspan=2><img src="/banner.gif"></td></tr>
          <tr>
            <td width="20%"><table><tr><td><a href="/a">Nav A</a></td></tr>
                <tr><td><a href="/b">Nav B</a></td></tr></table></td>
            <td><h1>Welcome</h1><p>Body text</p></td>
          </tr>
        </table></body></html>"##,
    );
    assert_eq!(doc.find_all(NodeId::DOCUMENT, "table").len(), 2);
    assert_eq!(doc.find_all(NodeId::DOCUMENT, "tr").len(), 4);
    assert_eq!(select(&doc, "table table a").unwrap().len(), 2);
    let body = doc.body().unwrap();
    assert!(inner_text(&doc, body).contains("Welcome"));
}

#[test]
fn font_tags_and_presentational_markup() {
    let doc = parse_document(
        r##"<center><font face="Arial" size=2 color=red><b>SALE!</b></font></center>
           <marquee>scrolling text</marquee><blink>nineties</blink>"##,
    );
    for tag in ["center", "font", "marquee", "blink"] {
        assert!(doc.find_element(NodeId::DOCUMENT, tag).is_some(), "missing {tag}");
    }
    let font = doc.find_element(NodeId::DOCUMENT, "font").unwrap();
    assert_eq!(doc.attr(font, "color"), Some("red"));
}

#[test]
fn deeply_nested_divs() {
    let html = format!("{}x{}", "<div>".repeat(100), "</div>".repeat(100));
    let doc = parse_document(&html);
    assert_eq!(doc.find_all(NodeId::DOCUMENT, "div").len(), 100);
    assert!(doc.max_depth() >= 100);
}

#[test]
fn frameset_era_page() {
    let doc = parse_document(
        r##"<frameset cols="20%,80%"><frame src="nav.html"><frame src="main.html">
           <noframes><body><p>No frames fallback</p></body></noframes></frameset>"##,
    );
    // We don't implement frameset layout, but nothing is lost or panics.
    assert!(doc.find_element(NodeId::DOCUMENT, "frameset").is_some());
    assert_eq!(doc.find_all(NodeId::DOCUMENT, "frame").len(), 2);
}

#[test]
fn conditional_comments_and_doctype_variants() {
    let doc = parse_document(
        r##"<!DOCTYPE HTML PUBLIC "-//W3C//DTD HTML 4.01 Transitional//EN">
           <!--[if IE 6]><p>IE6 only</p><![endif]-->
           <body><p>real</p></body>"##,
    );
    // Conditional comments stay comments: their payload must not render.
    let body = doc.body().unwrap();
    assert_eq!(inner_text(&doc, body), "real");
}

#[test]
fn entity_soup() {
    let doc = parse_document(
        "<p>&copy; 2007 &mdash; S&eacute;bastien &amp; C&#244;me &lt;admins&gt; &curren;&euro;</p>",
    );
    let p = doc.find_element(NodeId::DOCUMENT, "p").unwrap();
    let text = doc.text_content(p);
    assert!(text.contains('\u{a9}'));
    assert!(text.contains('\u{2014}'));
    assert!(text.contains("Sébastien"));
    assert!(text.contains("Côme"));
    assert!(text.contains("<admins>"));
    assert!(text.contains('\u{20ac}'));
}

#[test]
fn inline_javascript_document_write() {
    let doc = parse_document(
        r##"<body><script type="text/javascript">
            document.write("<div id='generated'>" + "stuff" + "</div>");
            if (a < b && c > d) { alert("x"); }
        </script><p>static</p></body>"##,
    );
    // Script content is a single text node; the markup inside it is NOT
    // parsed into elements.
    assert!(doc.element_by_id("generated").is_none());
    let script = doc.find_element(NodeId::DOCUMENT, "script").unwrap();
    assert!(doc.text_content(script).contains("document.write"));
    assert_eq!(inner_text(&doc, doc.body().unwrap()), "static");
}

#[test]
fn forms_with_all_control_types() {
    let doc = parse_document(
        r##"<form action="/submit" method=post>
            <input type=text name=a><input type=password name=b>
            <input type=checkbox checked><input type=radio>
            <input type=hidden name=csrf value=tok>
            <select name=c><option selected>one<option>two</select>
            <textarea name=d>initial <not a tag></textarea>
            <input type=submit value=Go>
        </form>"##,
    );
    assert_eq!(doc.find_all(NodeId::DOCUMENT, "input").len(), 6);
    assert_eq!(doc.find_all(NodeId::DOCUMENT, "option").len(), 2);
    let ta = doc.find_element(NodeId::DOCUMENT, "textarea").unwrap();
    assert_eq!(doc.text_content(ta), "initial <not a tag>");
    assert_eq!(select(&doc, "input[type=hidden]").unwrap().len(), 1);
}

#[test]
fn definition_lists_and_nested_lists() {
    let doc = parse_document(
        "<dl><dt>term1<dd>def1<dt>term2<dd>def2a<dd>def2b</dl><ol><li>1<ul><li>1a</ul><li>2</ol>",
    );
    assert_eq!(doc.find_all(NodeId::DOCUMENT, "dt").len(), 2);
    assert_eq!(doc.find_all(NodeId::DOCUMENT, "dd").len(), 3);
    let ol = doc.find_element(NodeId::DOCUMENT, "ol").unwrap();
    assert_eq!(doc.element_children(ol).len(), 2);
}

#[test]
fn real_world_head_section() {
    let doc = parse_document(
        r##"<head>
            <meta http-equiv="Content-Type" content="text/html; charset=iso-8859-1">
            <meta name="keywords" content="news, sports">
            <title>My 2007 Site</title>
            <link rel="stylesheet" type="text/css" href="/style.css">
            <style type="text/css">body { margin: 0; }</style>
            <script language="JavaScript" src="/lib.js"></script>
        </head><body>content</body>"##,
    );
    let head = doc.head().unwrap();
    let in_head = |tag: &str| {
        doc.find_all(NodeId::DOCUMENT, tag).iter().all(|&n| {
            let mut cur = doc.parent(n);
            while let Some(p) = cur {
                if p == head {
                    return true;
                }
                cur = doc.parent(p);
            }
            false
        })
    };
    for tag in ["meta", "title", "link", "style", "script"] {
        assert!(in_head(tag), "{tag} should be in head");
    }
    assert_eq!(inner_text(&doc, NodeId::DOCUMENT), "content");
}

#[test]
fn unclosed_everything_still_structured() {
    let doc =
        parse_document("<html><body><div class=a><p>one<div class=b><p>two<table><tr><td>cell");
    assert_eq!(doc.find_all(NodeId::DOCUMENT, "div").len(), 2);
    assert_eq!(doc.find_all(NodeId::DOCUMENT, "p").len(), 2);
    assert_eq!(doc.find_all(NodeId::DOCUMENT, "td").len(), 1);
    // Serialization closes everything.
    let out = serialize(&doc, NodeId::DOCUMENT);
    assert!(out.ends_with("</html>"));
}

#[test]
fn attribute_edge_cases() {
    let doc = parse_document(
        r##"<div data-json='{"a": 1}' style="color: red; background: url(x.png)"
             onclick="do(this)" checked DISABLED empty="">x</div>"##,
    );
    let div = doc.find_element(NodeId::DOCUMENT, "div").unwrap();
    assert_eq!(doc.attr(div, "data-json"), Some(r##"{"a": 1}"##));
    assert!(doc.attr(div, "style").unwrap().contains("url(x.png)"));
    assert_eq!(doc.attr(div, "checked"), Some(""));
    assert_eq!(doc.attr(div, "disabled"), Some(""));
    assert_eq!(doc.attr(div, "empty"), Some(""));
}

#[test]
fn mixed_case_tag_soup_normalizes() {
    assert_eq!(tags("<DIV><SpAn>x</SPAN></div>"), ["html", "head", "body", "div", "span"]);
}

#[test]
fn comments_inside_everything() {
    let doc = parse_document(
        "<table><!-- layout --><tr><!-- row --><td>x<!-- cell --></td></tr></table>",
    );
    assert_eq!(doc.find_all(NodeId::DOCUMENT, "td").len(), 1);
    let text = inner_text(&doc, NodeId::DOCUMENT);
    assert_eq!(text, "x");
}

#[test]
fn image_maps_and_objects() {
    let doc = parse_document(
        r##"<map name=m><area shape=rect coords="0,0,10,10" href="/a"></map>
           <object classid="clsid:X"><param name=movie value=x.swf><embed src=x.swf></object>"##,
    );
    assert!(doc.find_element(NodeId::DOCUMENT, "area").is_some());
    assert!(doc.find_element(NodeId::DOCUMENT, "param").is_some());
    assert!(doc.find_element(NodeId::DOCUMENT, "embed").is_some());
    // area/param/embed are void: no children swallowed.
    let area = doc.find_element(NodeId::DOCUMENT, "area").unwrap();
    assert!(doc.children(area).is_empty());
}
