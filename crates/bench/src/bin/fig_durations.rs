//! Experiment E3 (figure form) — the distribution of detection times and
//! CookiePicker durations across every probe of the Table-1 run.
//!
//! The paper reports per-site averages (Table 1, columns 5–6) and argues in
//! prose that detection is negligible against think time while duration is
//! network-bound and "reasonably short". This binary prints the full
//! percentile profile behind those claims.
//!
//! Usage: `fig_durations [seed]`.

use cp_bench::{run_sites_parallel, TextTable, TrainingOptions};
use cp_webworld::table1_population;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1);
    let sites = table1_population(seed);

    let opts = TrainingOptions { seed, ..TrainingOptions::default() };
    let results: Vec<_> = run_sites_parallel(&sites, &opts);

    let mut detection: Vec<f64> = Vec::new();
    let mut duration: Vec<f64> = Vec::new();
    for r in &results {
        for rec in &r.records {
            detection.push(rec.decision.detection_micros as f64 / 1_000.0);
            duration.push(rec.duration_ms);
        }
    }
    detection.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    duration.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));

    println!(
        "== E3 (figure): distribution over {} probes on 30 sites (seed {seed}) ==\n",
        detection.len()
    );
    let mut table = TextTable::new(&["Percentile", "Detection (ms)", "Duration (ms)"]);
    for (label, p) in [
        ("p10", 0.10),
        ("p25", 0.25),
        ("p50", 0.50),
        ("p75", 0.75),
        ("p90", 0.90),
        ("p99", 0.99),
        ("max", 1.0),
    ] {
        table.row(&[
            label.to_string(),
            format!("{:.3}", percentile(&detection, p)),
            format!("{:.0}", percentile(&duration, p)),
        ]);
    }
    print!("{}", table.render());

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!("\nmeans: detection {:.3} ms, duration {:.0} ms", mean(&detection), mean(&duration));
    println!("think-time reference: mean > 10,000 ms (Mah's model, §3.2)");
    println!("\nShape to match the paper: the whole detection distribution sits orders of");
    println!("magnitude below think time; the duration tail is driven by the three slow");
    println!("origins (paper: ~10 s at S4/S17/S28).");
}
