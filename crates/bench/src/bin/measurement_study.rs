//! Experiment E5 — the cookie **measurement study** the paper builds on
//! (§2, citing the authors' technical report, ref. 24): over five thousand Web
//! sites, first-party persistent cookies are widely used and *more than 60%
//! of them are set to expire after one year or longer*.
//!
//! Usage: `measurement_study [seed] [sites]` (defaults: seed 1, 5000 sites).

use cp_bench::TextTable;
use cp_webworld::measurement_population;

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(5_000);
    let sites = measurement_population(seed, n);

    let year_ms = 365u64 * 86_400_000;
    let mut persistent = 0usize;
    let mut session = 0usize;
    let mut sites_with_persistent = 0usize;
    // Lifetime histogram buckets in days.
    let buckets = [(0u64, 30u64), (30, 180), (180, 365), (365, 3_650), (3_650, u64::MAX)];
    let labels = ["< 1 month", "1-6 months", "6-12 months", "1-10 years", ">= 10 years"];
    let mut counts = [0usize; 5];
    let mut ge_year = 0usize;

    for site in &sites {
        let mut any = false;
        for c in &site.cookies {
            match c.lifetime {
                None => session += 1,
                Some(lt) => {
                    persistent += 1;
                    any = true;
                    if lt.as_millis() >= year_ms {
                        ge_year += 1;
                    }
                    let days = lt.as_millis() / 86_400_000;
                    for (i, (lo, hi)) in buckets.iter().enumerate() {
                        if days >= *lo && days < *hi {
                            counts[i] += 1;
                            break;
                        }
                    }
                }
            }
        }
        sites_with_persistent += usize::from(any);
    }

    println!("== Measurement study over {n} Web sites (seed {seed}) ==\n");
    println!(
        "Sites using first-party persistent cookies: {sites_with_persistent} ({:.1}%)",
        100.0 * sites_with_persistent as f64 / n as f64
    );
    println!("First-party persistent cookies observed:    {persistent}");
    println!("Session cookies observed:                   {session}\n");

    let mut table = TextTable::new(&["Lifetime", "Cookies", "Share"]);
    for (i, label) in labels.iter().enumerate() {
        table.row(&[
            label.to_string(),
            counts[i].to_string(),
            format!("{:.1}%", 100.0 * counts[i] as f64 / persistent.max(1) as f64),
        ]);
    }
    print!("{}", table.render());
    let frac = 100.0 * ge_year as f64 / persistent.max(1) as f64;
    println!(
        "\nPersistent cookies expiring in >= 1 year: {ge_year} ({frac:.1}%)   [paper: above 60%]"
    );
    assert!(frac > 60.0, "population must reproduce the >60% headline");
}
