//! Ablation A2 — the RSTM level parameter `l` (§4.1.3).
//!
//! The paper fixes `l = 5` and argues the restriction (a) suppresses
//! leaf-level page-dynamics noise and (b) bounds the online cost. This
//! sweep varies `l` from 1 to 12 over both experiment populations and
//! reports accuracy (false-useful / missed-useful cookies) and the mean
//! detection time, exposing both effects.
//!
//! Usage: `ablation_level [seed]`.

use cookiepicker_core::CookiePickerConfig;
use cp_bench::{run_sites_parallel, TextTable, TrainingOptions};
use cp_webworld::{table1_population, table2_population};

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1);
    let all: Vec<_> = table1_population(seed).into_iter().chain(table2_population(seed)).collect();

    let mut table = TextTable::new(&[
        "l (levels)",
        "False-useful cookies",
        "Missed useful cookies",
        "Avg detection (ms)",
    ]);

    println!("== A2: RSTM level-bound sweep (seed {seed}) ==\n");
    for level in [1usize, 2, 3, 4, 5, 6, 8, 10, 12] {
        let config = CookiePickerConfig::default().with_max_level(level);
        let opts = TrainingOptions { seed, config, ..TrainingOptions::default() };
        let results: Vec<_> = run_sites_parallel(&all, &opts);

        let mut false_useful = 0usize;
        let mut missed = 0usize;
        let (mut det_sum, mut det_n) = (0.0f64, 0usize);
        for r in &results {
            let truth = r.spec.useful_cookie_names();
            false_useful += r.marked_names.iter().filter(|m| !truth.contains(&m.as_str())).count();
            missed += truth.iter().filter(|t| !r.marked_names.iter().any(|m| m == *t)).count();
            for rec in &r.records {
                det_sum += rec.decision.detection_micros as f64 / 1_000.0;
                det_n += 1;
            }
        }
        table.row(&[
            level.to_string(),
            false_useful.to_string(),
            missed.to_string(),
            format!("{:.3}", det_sum / det_n.max(1) as f64),
        ]);
    }
    print!("{}", table.render());
    println!("\nReading: very small l can miss changes that only show below the cut;");
    println!("large l re-admits leaf-level noise (more false-useful marks) and raises");
    println!("the detection cost. l = 5 is the paper's sweet spot.");
}
