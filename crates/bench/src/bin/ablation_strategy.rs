//! Ablation A5 — test-group strategy comparison (an extension beyond the
//! paper, motivated by its P5/P6 piggyback marks).
//!
//! * `SentCookies` — the paper's behaviour: whole sent group per probe.
//!   Fast, but useless cookies riding with a useful one get marked.
//! * `PerCookie` — one cookie per probe: precise but linear in the cookie
//!   count.
//! * `GroupBisect` — whole group, then binary-search the culprits: the
//!   precision of PerCookie at near-SentCookies probe budgets.
//!
//! Usage: `ablation_strategy [seed]`.

use cookiepicker_core::{CookiePickerConfig, TestGroupStrategy};
use cp_bench::{run_sites_parallel, TextTable, TrainingOptions};
use cp_webworld::{table1_population, table2_population};

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1);
    let all: Vec<_> = table1_population(seed).into_iter().chain(table2_population(seed)).collect();

    let mut table = TextTable::new(&[
        "Strategy",
        "Marked useful",
        "of which real",
        "Piggyback/false marks",
        "Missed useful",
        "Hidden requests",
    ]);

    println!("== A5: test-group strategy comparison over 36 sites (seed {seed}) ==\n");
    for (name, strategy) in [
        ("SentCookies (paper)", TestGroupStrategy::SentCookies),
        ("PerCookie", TestGroupStrategy::PerCookie),
        ("GroupBisect", TestGroupStrategy::GroupBisect),
    ] {
        let config = CookiePickerConfig::default().with_strategy(strategy);
        let opts = TrainingOptions { seed, config, ..TrainingOptions::default() };
        let results: Vec<_> = run_sites_parallel(&all, &opts);

        let verbose = std::env::var_os("CP_VERBOSE").is_some();
        let (mut marked, mut real_marked, mut false_marked, mut missed, mut probes) =
            (0usize, 0usize, 0usize, 0usize, 0usize);
        for r in &results {
            let truth = r.spec.useful_cookie_names();
            marked += r.marked_names.len();
            real_marked += r.marked_names.iter().filter(|m| truth.contains(&m.as_str())).count();
            false_marked += r.marked_names.iter().filter(|m| !truth.contains(&m.as_str())).count();
            let missing: Vec<&&str> =
                truth.iter().filter(|t| !r.marked_names.iter().any(|m| &m == t)).collect();
            if verbose && !missing.is_empty() {
                eprintln!("  [{name}] {} missed {missing:?}", r.spec.domain);
            }
            missed += missing.len();
            probes += r.records.len();
        }
        table.row(&[
            name.to_string(),
            marked.to_string(),
            real_marked.to_string(),
            false_marked.to_string(),
            missed.to_string(),
            probes.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!("\nReading: SentCookies reproduces the paper (piggyback marks on P5/P6 plus");
    println!("the bursty-site false positives) and never misses a useful cookie — the");
    println!("group amplifies even tiny per-cookie effects. PerCookie and GroupBisect");
    println!("eliminate the piggybacking, but a cookie whose individual effect is very");
    println!("small (P6's 3-item cached panel) can slip under the 0.85 thresholds when");
    println!("probed alone — the conservative whole-group test errs in the direction the");
    println!("paper prefers (never miss; tolerate extra kept cookies). Structural-burst");
    println!("noise fools every strategy equally: in a single probe it is");
    println!("indistinguishable from a cookie effect.");
}
