//! Ablation A1 — the threshold sweep the paper leaves as future work
//! (§5.2.2: "the number may be further reduced if we fine-tune the two
//! thresholds").
//!
//! Sweeps `Thresh1 = Thresh2` over [0.30, 0.95] and reruns both experiment
//! populations at each setting, reporting the two error kinds of §3.3:
//!
//! * **false useful** — useless cookies kept (privacy cost, error kind 1);
//! * **missed useful** — useful cookies blocked (usability cost, error
//!   kind 2, requires backward error recovery).
//!
//! The paper's conservative 0.85/0.85 sits where missed-useful is zero; the
//! sweep shows the trade-off curve around it.
//!
//! Usage: `ablation_thresholds [seed]`.

use cookiepicker_core::CookiePickerConfig;
use cp_bench::{run_sites_parallel, TextTable, TrainingOptions};
use cp_webworld::{table1_population, table2_population};

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1);
    let t1 = table1_population(seed);
    let t2 = table2_population(seed);
    let all: Vec<_> = t1.iter().chain(t2.iter()).cloned().collect();

    let mut table = TextTable::new(&[
        "Thresh",
        "False-useful cookies",
        "Missed useful cookies",
        "Sites needing recovery",
    ]);

    println!("== A1: threshold sweep (Thresh1 = Thresh2, seed {seed}) ==\n");
    for thresh in [0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.85, 0.90, 0.95] {
        let config = CookiePickerConfig::default().with_thresholds(thresh, thresh);
        let opts = TrainingOptions { seed, config, ..TrainingOptions::default() };
        let results: Vec<_> = run_sites_parallel(&all, &opts);

        let mut false_useful = 0usize;
        let mut missed = 0usize;
        let mut recovery_sites = 0usize;
        for r in &results {
            let truth = r.spec.useful_cookie_names();
            let truth: Vec<&str> = truth.to_vec();
            false_useful += r.marked_names.iter().filter(|m| !truth.contains(&m.as_str())).count();
            let missing = truth.iter().filter(|t| !r.marked_names.iter().any(|m| m == *t)).count();
            missed += missing;
            recovery_sites += usize::from(missing > 0);
        }
        table.row(&[
            format!("{thresh:.2}"),
            false_useful.to_string(),
            missed.to_string(),
            recovery_sites.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!("\nReading: lowering the thresholds trims false-useful marks but starts");
    println!("missing real useful cookies (which costs backward-error-recovery clicks);");
    println!("the paper's 0.85 choice is the conservative end where nothing is missed.");
}
