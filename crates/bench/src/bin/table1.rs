//! Experiment E1 — reproduces **Table 1** of the paper: online testing
//! results for thirty Web sites (S1–S30).
//!
//! For each site, CookiePicker trains over ≥25 page views; we report the
//! number of persistent cookies, how many CookiePicker marked useful, how
//! many are *really* useful (ground truth — the paper's manual
//! verification), the average detection time, and the average CookiePicker
//! duration (hidden-request latency + detection).
//!
//! Paper reference values: 103 persistent cookies, 7 marked useful, 3 real
//! useful; 25/30 sites fully disabled; detection avg 14.6 ms (2007
//! hardware); duration avg 2,683 ms with S4/S17/S28 near 10 s.
//!
//! Usage: `table1 [seed]` (default seed 1).

use cp_bench::{
    run_sites_parallel, table1_rows_json, write_results_json, SiteRunResult, TextTable,
    TrainingOptions,
};
use cp_webworld::table1_population;

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1);
    let sites = table1_population(seed);

    // Sites are independent: run them on worker threads.
    let opts = TrainingOptions { seed, ..TrainingOptions::default() };
    let results: Vec<SiteRunResult> = run_sites_parallel(&sites, &opts);

    let mut table = TextTable::new(&[
        "Web Site",
        "Persistent",
        "Marked Useful",
        "Real Useful",
        "Detection Time(ms)",
        "CookiePicker Duration(ms)",
    ]);
    let (mut persistent, mut marked, mut real) = (0usize, 0usize, 0usize);
    let (mut det_sum, mut dur_sum) = (0.0f64, 0.0f64);
    let mut fully_disabled = 0usize;
    let mut false_useful_sites = Vec::new();
    let mut missed = Vec::new();

    for (i, r) in results.iter().enumerate() {
        let label = format!("S{}", i + 1);
        persistent += r.persistent;
        marked += r.marked_useful;
        real += r.real_useful;
        det_sum += r.avg_detection_ms();
        dur_sum += r.avg_duration_ms();
        if r.marked_useful == 0 {
            fully_disabled += 1;
        }
        if r.marked_useful > 0 && r.real_useful == 0 {
            false_useful_sites.push(label.clone());
        }
        if r.missed_useful() {
            missed.push(label.clone());
        }
        table.row(&[
            label,
            r.persistent.to_string(),
            r.marked_useful.to_string(),
            r.real_useful.to_string(),
            format!("{:.3}", r.avg_detection_ms()),
            format!("{:.1}", r.avg_duration_ms()),
        ]);
    }
    table.row(&[
        "Total".to_string(),
        persistent.to_string(),
        marked.to_string(),
        real.to_string(),
        String::new(),
        String::new(),
    ]);
    table.row(&[
        "Average".to_string(),
        String::new(),
        String::new(),
        String::new(),
        format!("{:.3}", det_sum / results.len() as f64),
        format!("{:.1}", dur_sum / results.len() as f64),
    ]);

    println!("== Table 1: online testing results for thirty Web sites (seed {seed}) ==\n");
    print!("{}", table.render());
    println!();
    println!(
        "Fully-disabled sites: {fully_disabled}/30 ({:.1}%)   [paper: 25/30 = 83.3%]",
        100.0 * fully_disabled as f64 / 30.0
    );
    println!(
        "False-useful sites:   {} ({})              [paper: 3 (S1, S10, S27)]",
        false_useful_sites.len(),
        false_useful_sites.join(", ")
    );
    println!(
        "Missed useful cookies: {}                     [paper: 0 — no backward recovery needed]",
        if missed.is_empty() { "none".to_string() } else { missed.join(", ") }
    );
    println!(
        "Totals: persistent {persistent} [paper 103], marked {marked} [paper 7], real {real} [paper 3]"
    );
    println!(
        "Averages: detection {:.3} ms [paper 14.6 ms on 2007 hardware], duration {:.1} ms [paper 2,683.3 ms]",
        det_sum / results.len() as f64,
        dur_sum / results.len() as f64
    );

    // Machine-readable dump for EXPERIMENTS.md bookkeeping.
    if let Some(path) = write_results_json("table1.json", &table1_rows_json(&results)) {
        println!("\n(json written to {})", path.display());
    }
}
