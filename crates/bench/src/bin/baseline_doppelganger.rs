//! Ablation A4 — CookiePicker vs the Doppelganger fork-window baseline
//! (§6): overhead and human involvement over identical browsing sessions.
//!
//! Both systems watch the same page views on the same sites. We compare:
//!
//! * extra requests issued per page view (CookiePicker: 1 hidden container
//!   fetch; Doppelganger: container + every embedded object);
//! * extra bytes transferred;
//! * user prompts raised (CookiePicker: none by design; Doppelganger: one
//!   per divergence, and 2007-style ad noise diverges constantly).
//!
//! Usage: `baseline_doppelganger [seed]`.

use std::sync::Arc;

use cookiepicker_core::{CookiePicker, CookiePickerConfig};
use cp_bench::TextTable;
use cp_browser::Browser;
use cp_cookies::CookiePolicy;
use cp_doppelganger::{Doppelganger, PromptPolicy};
use cp_net::{SimNetwork, Url};
use cp_webworld::{table1_population, SiteServer};

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1);
    // A representative slice of the Table-1 population (first 8 sites).
    let sites: Vec<_> = table1_population(seed).into_iter().take(8).collect();
    let views_per_site = 12usize;

    let mut table = TextTable::new(&[
        "System",
        "Extra requests",
        "Extra req/page-view",
        "Bytes down (KB)",
        "User prompts",
        "Useless cookies kept",
    ]);

    // --- CookiePicker run -------------------------------------------------
    let (mut cp_requests, mut cp_bytes, mut cp_kept) = (0u64, 0u64, 0usize);
    let mut total_views = 0usize;
    for spec in &sites {
        let server = SiteServer::new(spec.clone());
        let latency = server.latency_model();
        let mut net = SimNetwork::new(seed ^ spec.seed);
        net.register_with_latency(spec.domain.clone(), server, latency);
        let net = Arc::new(net);
        let mut browser = Browser::new(Arc::clone(&net), CookiePolicy::AcceptAll, seed);
        let mut picker = CookiePicker::new(CookiePickerConfig::default());
        let paths = spec.page_paths();
        let baseline = {
            // Measure the no-extension traffic of the same session first.
            let mut plain = Browser::new(Arc::clone(&net), CookiePolicy::AcceptAll, seed);
            for v in 0..views_per_site {
                let url = Url::parse(&format!("http://{}{}", spec.domain, paths[v % paths.len()]))
                    .unwrap();
                plain.visit(&url).unwrap();
                plain.think();
            }
            net.stats()
        };
        for v in 0..views_per_site {
            let url =
                Url::parse(&format!("http://{}{}", spec.domain, paths[v % paths.len()])).unwrap();
            browser.visit_with(&url, &mut picker).unwrap();
            browser.think();
            total_views += 1;
        }
        let after = net.stats();
        // Extension overhead = (total with extension) − 2×(plain session):
        // both sessions issued the same regular traffic.
        cp_requests += after.requests - 2 * baseline.requests;
        cp_bytes += after.bytes_down - 2 * baseline.bytes_down;
        let truth = spec.useful_cookie_names();
        cp_kept += browser
            .jar
            .iter()
            .filter(|c| c.is_persistent() && c.useful() && !truth.contains(&c.name.as_str()))
            .count();
    }

    table.row(&[
        "CookiePicker".to_string(),
        cp_requests.to_string(),
        format!("{:.2}", cp_requests as f64 / total_views as f64),
        format!("{:.0}", cp_bytes as f64 / 1024.0),
        "0".to_string(),
        cp_kept.to_string(),
    ]);

    // --- Doppelganger run -------------------------------------------------
    let (mut dg_requests, mut dg_bytes, mut dg_prompts, mut dg_kept) = (0u64, 0u64, 0usize, 0usize);
    for spec in &sites {
        let server = SiteServer::new(spec.clone());
        let latency = server.latency_model();
        let mut net = SimNetwork::new(seed ^ spec.seed);
        net.register_with_latency(spec.domain.clone(), server, latency);
        let net = Arc::new(net);
        let mut browser = Browser::new(Arc::clone(&net), CookiePolicy::AcceptAll, seed);
        let mut dg = Doppelganger::new(PromptPolicy::AlwaysEnable);
        let paths = spec.page_paths();
        let baseline = {
            let mut plain = Browser::new(Arc::clone(&net), CookiePolicy::AcceptAll, seed);
            for v in 0..views_per_site {
                let url = Url::parse(&format!("http://{}{}", spec.domain, paths[v % paths.len()]))
                    .unwrap();
                plain.visit(&url).unwrap();
                plain.think();
            }
            net.stats()
        };
        for v in 0..views_per_site {
            let url =
                Url::parse(&format!("http://{}{}", spec.domain, paths[v % paths.len()])).unwrap();
            browser.visit_with(&url, &mut dg).unwrap();
            browser.think();
        }
        let after = net.stats();
        dg_requests += after.requests - 2 * baseline.requests;
        dg_bytes += after.bytes_down - 2 * baseline.bytes_down;
        dg_prompts += dg.prompts();
        let truth = spec.useful_cookie_names();
        dg_kept += browser
            .jar
            .iter()
            .filter(|c| c.is_persistent() && c.useful() && !truth.contains(&c.name.as_str()))
            .count();
    }

    table.row(&[
        "Doppelganger".to_string(),
        dg_requests.to_string(),
        format!("{:.2}", dg_requests as f64 / total_views as f64),
        format!("{:.0}", dg_bytes as f64 / 1024.0),
        dg_prompts.to_string(),
        dg_kept.to_string(),
    ]);

    println!(
        "== A4: CookiePicker vs Doppelganger over {} page views on {} sites (seed {seed}) ==\n",
        total_views,
        sites.len()
    );
    print!("{}", table.render());
    println!("\nShape to match §6: CookiePicker needs exactly one extra container request");
    println!("per probed view and zero prompts; Doppelganger mirrors the full window");
    println!("(many requests/bytes) and drags the user in whenever dynamics diverge.");
}
