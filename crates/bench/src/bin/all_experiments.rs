//! Runs every experiment binary in sequence (E1, E2, E4, E5, A1–A4) —
//! the one-command regeneration of all the paper's tables and claims.
//!
//! Usage: `all_experiments [seed]`.

use std::process::Command;

fn main() {
    let seed = std::env::args().nth(1).unwrap_or_else(|| "1".to_string());
    let me = std::env::current_exe().expect("current exe path");
    let dir = me.parent().expect("bin dir");

    let experiments = [
        "table1",
        "table2",
        "measurement_study",
        "fig_stm_vs_rstm",
        "fig_durations",
        "ablation_thresholds",
        "ablation_level",
        "ablation_cvce",
        "ablation_strategy",
        "ablation_autocal",
        "baseline_doppelganger",
    ];
    for exp in experiments {
        println!("\n{}", "=".repeat(78));
        println!("== running {exp} (seed {seed})");
        println!("{}\n", "=".repeat(78));
        let status = Command::new(dir.join(exp))
            .arg(&seed)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {exp}: {e}"));
        assert!(status.success(), "{exp} exited with {status}");
    }
    println!("\nAll experiments completed.");
}
