//! Experiment E4 — the §4.1.3 performance claim: full STM is "still too
//! expensive to use online … more than one second in difference detection
//! for some large Web pages", while level-restricted RSTM is cheap enough.
//!
//! We sweep page size and time full STM, RSTM(l=5), Selkow top-down edit
//! distance and Valiente bottom-up matching on the realistic probe pair:
//! two renders of the *same* page differing only in page dynamics (this is
//! what almost every probe compares — structurally similar trees, where
//! the quadratic DP has no mismatch pruning to hide behind).
//!
//! Shape to reproduce: STM cost grows superlinearly with page size and
//! dwarfs RSTM's, which stays near-constant — hence RSTM is the detector
//! usable online.
//!
//! Usage: `fig_stm_vs_rstm [seed]`.

use std::time::Instant;

use cookiepicker_core::DomTreeView;
use cp_bench::TextTable;
use cp_cookies::SimTime;
use cp_runtime::rng::{SeedableRng, StdRng};
use cp_treediff::{
    bottom_up_matching, rstm, selkow_distance, stm, tree_size, zhang_shasha_distance,
};
use cp_webworld::render::{render_page, RenderInput};
use cp_webworld::{Category, CookieSpec, SiteSpec};

/// Times `f` averaged over enough iterations to be measurable.
fn time_us(f: impl Fn() -> usize) -> f64 {
    // Warm-up + calibration run.
    let start = Instant::now();
    let _ = f();
    let once = start.elapsed().as_secs_f64();
    let iters = ((0.02 / once.max(1e-7)) as usize).clamp(1, 2_000);
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    start.elapsed().as_secs_f64() * 1e6 / iters as f64
}

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1);
    let mut table = TextTable::new(&[
        "DOM nodes",
        "STM (us)",
        "RSTM l=5 (us)",
        "Selkow (us)",
        "Zhang-Shasha (us)",
        "Bottom-up (us)",
        "STM/RSTM speedup",
    ]);

    println!("== E4: full STM vs restricted STM runtime on growing pages (seed {seed}) ==\n");
    for richness in [2usize, 8, 20, 50, 120, 300, 700] {
        let mut spec = SiteSpec::new("bench.example", Category::Reference, seed)
            .with_cookie(CookieSpec::tracker("trk"));
        spec.richness = richness;
        spec.noise.ad_slots = 4;

        let render = |noise_seed: u64, t: u64| {
            let input = RenderInput {
                spec: &spec,
                path: "/page/1",
                cookies: &[],
                now: SimTime::from_secs(t),
            };
            cp_html::parse_document(&render_page(&input, &mut StdRng::seed_from_u64(noise_seed)))
        };
        // The realistic probe pair: same page, different dynamics.
        let a = render(seed, 60);
        let b = render(seed + 99, 75);

        let va = DomTreeView::from_body(&a);
        let vb = DomTreeView::from_body(&b);
        let nodes = (tree_size(&va) + tree_size(&vb)) / 2;

        let stm_us = time_us(|| stm(&va, &vb));
        let rstm_us = time_us(|| rstm(&va, &vb, 5));
        let selkow_us = time_us(|| selkow_distance(&va, &vb));
        let zs_us = if nodes <= 700 {
            Some(time_us(|| zhang_shasha_distance(&va, &vb)))
        } else {
            None // O(n^2 depth^2): minutes at this size — the paper's point
        };
        let bu_us = time_us(|| bottom_up_matching(&va, &vb));

        table.row(&[
            nodes.to_string(),
            format!("{stm_us:.1}"),
            format!("{rstm_us:.2}"),
            format!("{selkow_us:.1}"),
            zs_us.map_or("(skipped)".to_string(), |v| format!("{v:.1}")),
            format!("{bu_us:.1}"),
            format!("{:.0}x", stm_us / rstm_us.max(0.01)),
        ]);
    }
    print!("{}", table.render());
    println!("\nShape to match the paper: STM cost explodes with page size (>1 s on large");
    println!("2007 pages / 2007 hardware) while RSTM(l=5) stays near-constant — hence RSTM");
    println!("is the online-usable detector. Bottom-up is fast but inaccurate on DOMs");
    println!("(a single changed leaf unmaps its whole ancestor chain).");
}
