//! Experiment E2 — reproduces **Table 2** of the paper: online testing
//! results for six Web sites (P1–P6) whose persistent cookies are really
//! useful.
//!
//! For each site we report how many cookies CookiePicker marked useful, how
//! many are really useful, the NTreeSim/NTextSim scores observed on the
//! pages where the useful cookies matter, and the usage class.
//!
//! Paper reference: every real-useful cookie is marked (no misses, so no
//! backward error recovery); P5/P6 pick up piggyback marks (9/1 and 5/2);
//! similarity scores average 0.418 (tree) and 0.521 (text), all far below
//! the 0.85 thresholds.
//!
//! Usage: `table2 [seed]` (default seed 1).

use cp_bench::{run_site_training, write_results_json, TextTable, TrainingOptions};
use cp_runtime::json;
use cp_runtime::json::Json;
use cp_webworld::{table2_population, CookieRole};

fn usage_label(spec: &cp_webworld::SiteSpec) -> &'static str {
    // The dominant useful role on the site, in the paper's vocabulary:
    // a sign-up wall dominates, then preference, then performance.
    let has = |role: CookieRole| spec.cookies.iter().any(|c| c.role == role);
    if has(CookieRole::SignUp) {
        "Sign Up"
    } else if has(CookieRole::Preference) {
        "Preference"
    } else {
        "Performance"
    }
}

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1);
    let sites = table2_population(seed);

    let mut table = TextTable::new(&[
        "Web Site",
        "Marked Useful",
        "Real Useful",
        "NTreeSim(A,B,5)",
        "NTextSim(S1,S2)",
        "Usage",
    ]);
    let (mut tree_sum, mut text_sum) = (0.0f64, 0.0f64);
    let mut missed_any = false;
    let mut rows_json = Vec::new();

    for (i, spec) in sites.iter().enumerate() {
        let opts = TrainingOptions { seed, ..TrainingOptions::default() };
        let r = run_site_training(spec, &opts);
        // The similarity scores "on the Web pages that persistent cookies
        // are useful": the probes that detected the difference.
        let marking = r.marking_records();
        let (tree_sim, text_sim) = if marking.is_empty() {
            (f64::NAN, f64::NAN)
        } else {
            let n = marking.len() as f64;
            (
                marking.iter().map(|m| m.decision.tree_sim).sum::<f64>() / n,
                marking.iter().map(|m| m.decision.text_sim).sum::<f64>() / n,
            )
        };
        tree_sum += tree_sim;
        text_sum += text_sim;
        missed_any |= r.missed_useful();

        let label = format!("P{}", i + 1);
        table.row(&[
            label.clone(),
            r.marked_useful.to_string(),
            r.real_useful.to_string(),
            format!("{tree_sim:.3}"),
            format!("{text_sim:.3}"),
            usage_label(spec).to_string(),
        ]);
        rows_json.push(json!({
            "site": label,
            "host": spec.domain.clone(),
            "marked_useful": r.marked_useful,
            "real_useful": r.real_useful,
            "n_tree_sim": tree_sim,
            "n_text_sim": text_sim,
            "usage": usage_label(spec)
        }));
    }
    table.row(&[
        "Average".to_string(),
        String::new(),
        String::new(),
        format!("{:.3}", tree_sum / sites.len() as f64),
        format!("{:.3}", text_sum / sites.len() as f64),
        String::new(),
    ]);

    println!("== Table 2: six Web sites with useful persistent cookies (seed {seed}) ==\n");
    print!("{}", table.render());
    println!();
    println!("Paper marked/real per site: P1 1/1, P2 1/1, P3 1/1, P4 1/1, P5 9/1, P6 5/2");
    println!("Paper similarity averages: NTreeSim 0.418, NTextSim 0.521 (both ≪ 0.85)");
    println!(
        "Missed useful cookies: {}   [paper: none — all useful cookies identified]",
        if missed_any { "YES (regression!)" } else { "none" }
    );

    if let Some(path) = write_results_json("table2.json", &Json::Array(rows_json)) {
        println!("\n(json written to {})", path.display());
    }
}
