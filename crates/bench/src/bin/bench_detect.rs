//! Detection micro-benchmark: reference vs compiled vs cached decide().
//!
//! Renders a deterministic corpus of (regular, hidden) page pairs from the
//! Table-1 population — the same generator behind the accuracy experiments
//! and the embedded serve world — and times three variants of the Figure-5
//! decision over it:
//!
//! * `baseline_*` — [`decide_reference`]: HashMap `ContentSet`s, string
//!   label comparison, per-call DP row allocation.
//! * `compiled_*` — [`decide`]: interned [`DetectTree`]s, hash-compiled
//!   content multisets, one reusable scratch workspace.
//! * `cached_*` — [`decide_analyzed`] over prebuilt [`PageAnalysis`]
//!   values: what cp-serve pays on an analysis-cache hit.
//!
//! Every compiled decision is asserted bit-identical to the reference
//! while the clock runs, so the speedup cannot come from answering a
//! different question.
//!
//! Usage: `bench_detect [seed] [sites] [iters] [out.json]`
//! (defaults: 7, 20, 30, BENCH_detect.json)

use std::time::Instant;

use cookiepicker_core::{
    decide, decide_analyzed, decide_reference, CookiePickerConfig, Decision, PageAnalysis,
};
use cp_cookies::SimTime;
use cp_html::{parse_document, Document};
use cp_runtime::json::Json;
use cp_runtime::rng::{Rng, SeedableRng, StdRng};
use cp_webworld::render::{render_page, RenderInput};
use cp_webworld::table1_population;

/// Renders the benchmark corpus: per site, each page with all cookies sent
/// vs the same page with a random subset withheld (the hidden request).
fn corpus(seed: u64, sites: usize, paths_per_site: usize) -> Vec<(Document, Document)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let population = table1_population(seed);
    let mut pairs = Vec::new();
    for spec in population.iter().take(sites) {
        let all: Vec<(String, String)> =
            spec.cookies.iter().map(|c| (c.name.clone(), format!("v{:x}", spec.seed))).collect();
        for path in spec.page_paths().iter().take(paths_per_site) {
            let kept: Vec<(String, String)> =
                all.iter().filter(|_| rng.gen_range(0..3u32) > 0).cloned().collect();
            let input_a = RenderInput { spec, path, cookies: &all, now: SimTime::EPOCH };
            let input_b = RenderInput { spec, path, cookies: &kept, now: SimTime::EPOCH };
            let mut noise_a = StdRng::seed_from_u64(rng.gen::<u64>());
            let mut noise_b = StdRng::seed_from_u64(rng.gen::<u64>());
            let html_a = render_page(&input_a, &mut noise_a);
            let html_b = render_page(&input_b, &mut noise_b);
            pairs.push((parse_document(&html_a), parse_document(&html_b)));
        }
    }
    pairs
}

struct Stats {
    median_micros: f64,
    p99_micros: f64,
    pages_per_sec: f64,
}

/// Times one call, appending the elapsed nanos to `out`.
fn timed(out: &mut Vec<u64>, f: impl FnOnce() -> Decision) {
    let start = Instant::now();
    std::hint::black_box(f());
    out.push(start.elapsed().as_nanos() as u64);
}

/// Percentiles over individual calls; pages/sec over the summed call time
/// (two pages per decision).
fn stats(mut nanos: Vec<u64>) -> Stats {
    let total: u64 = nanos.iter().sum();
    let calls = nanos.len();
    nanos.sort_unstable();
    let pct = |q: f64| {
        let rank = ((calls as f64 * q).ceil() as usize).max(1);
        nanos[(rank - 1).min(calls - 1)] as f64 / 1_000.0
    };
    Stats {
        median_micros: pct(0.50),
        p99_micros: pct(0.99),
        pages_per_sec: if total > 0 { (2 * calls) as f64 / (total as f64 / 1e9) } else { 0.0 },
    }
}

fn main() {
    let arg = |n: usize| std::env::args().nth(n);
    let seed: u64 = arg(1).and_then(|s| s.parse().ok()).unwrap_or(7);
    let sites: usize = arg(2).and_then(|s| s.parse().ok()).unwrap_or(20);
    let iters: usize = arg(3).and_then(|s| s.parse().ok()).unwrap_or(30);
    let out = arg(4).unwrap_or_else(|| "BENCH_detect.json".to_string());

    let config = CookiePickerConfig::default();
    let pairs = corpus(seed, sites, 2);
    eprintln!(
        "bench_detect: seed {seed}, {} pairs ({sites} sites x 2 paths), {iters} iters/variant",
        pairs.len()
    );

    // Correctness gate before anything is timed: the compiled pipeline must
    // reproduce the reference decision on every pair in the corpus.
    for (a, b) in &pairs {
        let compiled = decide(a, b, &config);
        let reference = decide_reference(a, b, &config);
        assert_eq!(compiled.tree_sim.to_bits(), reference.tree_sim.to_bits());
        assert_eq!(compiled.text_sim.to_bits(), reference.text_sim.to_bits());
        assert_eq!(compiled.cookies_caused_difference, reference.cookies_caused_difference);
    }

    // Warm-up pass per variant, then the timed loops.
    let analyses: Vec<(PageAnalysis, PageAnalysis)> = pairs
        .iter()
        .map(|(a, b)| {
            (
                PageAnalysis::from_document(a, config.compare_from_body),
                PageAnalysis::from_document(b, config.compare_from_body),
            )
        })
        .collect();
    for (a, b) in &pairs {
        std::hint::black_box(decide_reference(a, b, &config));
        std::hint::black_box(decide(a, b, &config));
    }

    // The variants are interleaved per pair — each trio of calls runs
    // back-to-back on the same data under the same CPU conditions, so
    // clock-frequency drift over the run cannot bias one variant.
    let cap = pairs.len() * iters;
    let (mut base_ns, mut comp_ns, mut cache_ns) =
        (Vec::with_capacity(cap), Vec::with_capacity(cap), Vec::with_capacity(cap));
    for _ in 0..iters {
        for i in 0..pairs.len() {
            timed(&mut base_ns, || decide_reference(&pairs[i].0, &pairs[i].1, &config));
            timed(&mut comp_ns, || decide(&pairs[i].0, &pairs[i].1, &config));
            timed(&mut cache_ns, || decide_analyzed(&analyses[i].0, &analyses[i].1, &config));
        }
    }
    let (baseline, compiled, cached) = (stats(base_ns), stats(comp_ns), stats(cache_ns));

    let speedup_median = baseline.median_micros / compiled.median_micros.max(1e-9);
    let cached_speedup_median = baseline.median_micros / cached.median_micros.max(1e-9);

    let report = Json::object()
        .set("seed", seed)
        .set("sites", sites as u64)
        .set("pairs", pairs.len() as u64)
        .set("iters", iters as u64)
        .set("baseline_median_micros", baseline.median_micros)
        .set("baseline_p99_micros", baseline.p99_micros)
        .set("baseline_pages_per_sec", baseline.pages_per_sec)
        .set("compiled_median_micros", compiled.median_micros)
        .set("compiled_p99_micros", compiled.p99_micros)
        .set("compiled_pages_per_sec", compiled.pages_per_sec)
        .set("cached_median_micros", cached.median_micros)
        .set("cached_p99_micros", cached.p99_micros)
        .set("cached_pages_per_sec", cached.pages_per_sec)
        .set("speedup_median", speedup_median)
        .set("cached_speedup_median", cached_speedup_median);
    let json = report.to_pretty();
    std::fs::write(&out, format!("{json}\n")).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));

    println!("{json}");
    eprintln!(
        "bench_detect: median {:.1}us -> {:.1}us ({speedup_median:.2}x), cached {:.1}us ({cached_speedup_median:.2}x); report in {out}",
        baseline.median_micros, compiled.median_micros, cached.median_micros
    );
}
