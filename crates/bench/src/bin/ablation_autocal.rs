//! Ablation A6 — automatic threshold calibration (implements the §5.2.2
//! future work).
//!
//! Samples labelled similarity pairs from the experiment populations:
//! *noise pairs* (two renders of the same page, same cookies) and *effect
//! pairs* (cookie disabled), fits the tightest zero-miss thresholds with
//! [`cookiepicker_core::fit_thresholds`], and replays Table 1 + Table 2
//! under the fitted thresholds to compare against the paper's fixed 0.85.
//!
//! Usage: `ablation_autocal [seed]`.

use cookiepicker_core::{decide, fit_thresholds, CookiePickerConfig, SimSample};
use cp_bench::{run_sites_parallel, TextTable, TrainingOptions};
use cp_cookies::SimTime;
use cp_runtime::rng::{SeedableRng, StdRng};
use cp_webworld::render::{render_page, RenderInput};
use cp_webworld::{table1_population, table2_population, SiteSpec};

fn render(spec: &SiteSpec, path: &str, cookies: &[(String, String)], k: u64) -> cp_html::Document {
    let input = RenderInput { spec, path, cookies, now: SimTime::from_secs(k) };
    cp_html::parse_document(&render_page(&input, &mut StdRng::seed_from_u64(k)))
}

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1);
    let t1 = table1_population(seed);
    let t2 = table2_population(seed);
    let cfg = CookiePickerConfig::default();

    // --- sample noise pairs from every site (non-bursty pages) ------------
    let mut noise = Vec::new();
    for spec in t1.iter().chain(t2.iter()) {
        if spec.noise.structural_burst_prob > 0.0 {
            continue; // bursts are unlearnable noise; exclude from fitting
        }
        let all: Vec<(String, String)> =
            spec.cookies.iter().map(|c| (c.name.clone(), "v".to_string())).collect();
        for k in 0..3u64 {
            let a = render(spec, "/page/2", &all, seed + k);
            let b = render(spec, "/page/2", &all, seed + 100 + k);
            let d = decide(&a, &b, &cfg);
            noise.push(SimSample::new(d.tree_sim, d.text_sim));
        }
    }

    // --- sample effect pairs from the sites with useful cookies -----------
    let mut effects = Vec::new();
    for spec in t1.iter().chain(t2.iter()) {
        if spec.useful_cookie_names().is_empty() {
            continue;
        }
        let all: Vec<(String, String)> =
            spec.cookies.iter().map(|c| (c.name.clone(), "v".to_string())).collect();
        let path = spec
            .cookies
            .iter()
            .find_map(|c| match &c.scope {
                cp_webworld::PageSelector::Prefix(p) => Some(format!("{p}/home")),
                cp_webworld::PageSelector::All => None,
            })
            .unwrap_or_else(|| "/page/1".to_string());
        for k in 0..3u64 {
            let a = render(spec, &path, &all, seed + k);
            let b = render(spec, &path, &[], seed + 200 + k);
            let d = decide(&a, &b, &cfg);
            effects.push(SimSample::new(d.tree_sim, d.text_sim));
        }
    }

    let fit = fit_thresholds(&noise, &effects);
    println!("== A6: automatic threshold calibration (seed {seed}) ==\n");
    println!("samples: {} noise pairs, {} effect pairs", noise.len(), effects.len());
    println!(
        "fitted thresholds: Thresh1 = {:.3}, Thresh2 = {:.3}  [paper: 0.85 / 0.85]",
        fit.thresh1, fit.thresh2
    );
    println!(
        "separable on samples: {} (residual noise-misread rate {:.1}%)",
        fit.separable,
        fit.residual_false_rate * 100.0
    );

    // --- replay both populations under fitted vs paper thresholds ---------
    let mut table =
        TextTable::new(&["Thresholds", "False-useful cookies", "Missed useful cookies"]);
    let all_sites: Vec<_> = t1.iter().chain(t2.iter()).cloned().collect();
    for (label, config) in [
        ("paper 0.85/0.85".to_string(), cfg.clone()),
        (
            format!("fitted {:.2}/{:.2}", fit.thresh1, fit.thresh2),
            CookiePickerConfig::default().with_thresholds(fit.thresh1, fit.thresh2),
        ),
    ] {
        let opts = TrainingOptions { seed, config, ..TrainingOptions::default() };
        let results: Vec<_> = run_sites_parallel(&all_sites, &opts);
        let mut false_useful = 0usize;
        let mut missed = 0usize;
        for r in &results {
            let truth = r.spec.useful_cookie_names();
            false_useful += r.marked_names.iter().filter(|m| !truth.contains(&m.as_str())).count();
            missed += truth.iter().filter(|t| !r.marked_names.iter().any(|m| m == *t)).count();
        }
        table.row(&[label, false_useful.to_string(), missed.to_string()]);
    }
    print!("\n{}", table.render());
    println!("\nReading: the fitted thresholds keep the zero-miss guarantee while");
    println!("trimming the avoidable false-useful marks; the burst-noise sites remain");
    println!("false positives under any threshold (their noise is indistinguishable");
    println!("from a cookie effect within a single probe).");
}
