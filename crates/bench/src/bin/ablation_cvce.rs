//! Ablation A3 — the `s` term of Formula 3 (§4.2).
//!
//! The paper adds `s` to the Jaccard numerator so that text *replacement*
//! within the same context (rotating ads, tickers, dynamic teasers) does
//! not count as difference. This experiment renders noise pairs (same page,
//! same cookies, different dynamics) and cookie pairs (same page, cookie
//! stripped) and compares `NTextSim` **with** and **without** the `s` term.
//!
//! Shape to reproduce: without `s`, noise pairs fall below the 0.85
//! threshold (false "cookie-caused" signals); with `s`, noise pairs sit at
//! 1.0 while cookie pairs stay far below threshold.
//!
//! Usage: `ablation_cvce [seed]`.

use cookiepicker_core::{content_extract, n_text_sim, n_text_sim_strict};
use cp_bench::TextTable;
use cp_cookies::SimTime;
use cp_html::NodeId;
use cp_runtime::rng::{SeedableRng, StdRng};
use cp_webworld::render::{render_page, RenderInput};
use cp_webworld::{Category, CookieRole, CookieSpec, EffectSize, SiteSpec};

fn extract(html: &str) -> cookiepicker_core::ContentSet {
    let doc = cp_html::parse_document(html);
    let root = doc.body().unwrap_or(NodeId::DOCUMENT);
    content_extract(&doc, root)
}

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1);
    // A noisy site (several rotating ad slots + ticker) with one useful
    // preference cookie.
    let mut spec = SiteSpec::new("ablation.example", Category::News, seed)
        .with_cookie(CookieSpec::useful("pref", CookieRole::Preference, EffectSize::Medium));
    spec.noise.ad_slots = 5;
    // Text-heavy dynamics: rotating story teasers in a stable context —
    // only the s term can tell them from a cookie effect.
    spec.noise.dynamic_teasers = 8;

    let pref = [("pref".to_string(), "v".to_string())];
    let render = |cookies: &[(String, String)], noise_seed: u64, t: u64| -> String {
        let input =
            RenderInput { spec: &spec, path: "/page/3", cookies, now: SimTime::from_secs(t) };
        render_page(&input, &mut StdRng::seed_from_u64(noise_seed))
    };

    let trials = 20u64;
    let mut table = TextTable::new(&[
        "Pair type",
        "NTextSim with s (mean)",
        "NTextSim strict (mean)",
        "strict pairs below 0.85",
    ]);

    for (label, is_noise_pair) in [("noise (ads/ticker rotate)", true), ("cookie disabled", false)]
    {
        let (mut with_s, mut strict, mut strict_below) = (0.0f64, 0.0f64, 0usize);
        for k in 0..trials {
            let a = extract(&render(&pref, seed + k, 60 + k));
            let b = if is_noise_pair {
                extract(&render(&pref, seed + 1_000 + k, 62 + k))
            } else {
                extract(&render(&[], seed + 1_000 + k, 62 + k))
            };
            let sim_s = n_text_sim(&a, &b);
            let sim_strict = n_text_sim_strict(&a, &b);
            with_s += sim_s;
            strict += sim_strict;
            strict_below += usize::from(sim_strict <= 0.85);
        }
        table.row(&[
            label.to_string(),
            format!("{:.3}", with_s / trials as f64),
            format!("{:.3}", strict / trials as f64),
            format!("{strict_below}/{trials}"),
        ]);
    }

    println!("== A3: CVCE with vs without the same-context forgiveness term (seed {seed}) ==\n");
    print!("{}", table.render());
    println!("\nReading: the s term pins noise pairs at (or near) 1.0 while leaving the");
    println!("cookie-caused difference detectable — dropping it makes rotating ad text");
    println!("look like a cookie effect and would flood FORCUM with false marks.");
}
