//! Minimal aligned text-table printer for experiment output.

/// A text table with a header row and aligned columns.
///
/// ```
/// use cp_bench::TextTable;
/// let mut t = TextTable::new(&["Site", "Cookies"]);
/// t.row(&["S1", "2"]);
/// t.row(&["S2", "14"]);
/// let s = t.render();
/// assert!(s.contains("S1"));
/// assert!(s.lines().count() >= 4);
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row; missing cells render empty, extra cells are dropped.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) {
        self.rows.push(cells.iter().map(|s| s.as_ref().to_string()).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with `|`-separated aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().take(cols).enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                line.push_str(&format!(" {cell:w$} |", w = w));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&"-".repeat(w + 2));
            sep.push('|');
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment() {
        let mut t = TextTable::new(&["A", "Long header"]);
        t.row(&["xxxxxxx", "1"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn missing_and_extra_cells() {
        let mut t = TextTable::new(&["A", "B"]);
        t.row(&["only"]);
        t.row(&["x", "y", "dropped"]);
        let s = t.render();
        assert!(s.contains("only"));
        assert!(!s.contains("dropped"));
    }
}
