//! The per-site training driver used by every experiment binary.

use std::sync::Arc;

use cookiepicker_core::{CookiePicker, CookiePickerConfig, DetectionRecord};
use cp_browser::Browser;
use cp_cookies::{CookieJar, CookiePolicy};
use cp_net::{NetworkStats, SimNetwork, Url};
use cp_webworld::{SiteServer, SiteSpec};

/// Options for one site's training run.
#[derive(Debug, Clone)]
pub struct TrainingOptions {
    /// Minimum page views (the paper uses "over 25").
    pub min_page_views: usize,
    /// Network/browser seed (latency and think-time draws).
    pub seed: u64,
    /// CookiePicker configuration.
    pub config: CookiePickerConfig,
}

impl Default for TrainingOptions {
    fn default() -> Self {
        TrainingOptions { min_page_views: 28, seed: 1, config: CookiePickerConfig::default() }
    }
}

/// The outcome of training CookiePicker on one site.
#[derive(Debug)]
pub struct SiteRunResult {
    /// The site trained on.
    pub spec: SiteSpec,
    /// Persistent cookies stored in the jar at the end.
    pub persistent: usize,
    /// Cookies marked useful by CookiePicker.
    pub marked_useful: usize,
    /// Ground-truth useful cookies.
    pub real_useful: usize,
    /// Names CookiePicker marked.
    pub marked_names: Vec<String>,
    /// Every detection record of the run.
    pub records: Vec<DetectionRecord>,
    /// Final jar contents.
    pub jar: CookieJar,
    /// Network traffic consumed by the whole run.
    pub net_stats: NetworkStats,
    /// Page views performed.
    pub page_views: usize,
}

impl SiteRunResult {
    /// Mean detection time in milliseconds (0 when no probe ran).
    pub fn avg_detection_ms(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.decision.detection_micros as f64 / 1_000.0).sum::<f64>()
            / self.records.len() as f64
    }

    /// Mean CookiePicker duration in milliseconds (hidden latency +
    /// detection; 0 when no probe ran).
    pub fn avg_duration_ms(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.duration_ms).sum::<f64>() / self.records.len() as f64
    }

    /// The detection records in which cookies were judged useful.
    pub fn marking_records(&self) -> Vec<&DetectionRecord> {
        self.records.iter().filter(|r| r.decision.cookies_caused_difference).collect()
    }

    /// Whether CookiePicker missed any really-useful cookie.
    pub fn missed_useful(&self) -> bool {
        let truth = self.spec.useful_cookie_names();
        truth.iter().any(|t| !self.marked_names.iter().any(|m| m == t))
    }
}

/// Trains CookiePicker on one site: visits its pages (cycling when the
/// paper's "over 25" exceeds the page count), lets the picker probe after
/// each view, and reports the outcome.
pub fn run_site_training(spec: &SiteSpec, options: &TrainingOptions) -> SiteRunResult {
    let server = SiteServer::new(spec.clone());
    let latency = server.latency_model();
    let mut net = SimNetwork::new(options.seed ^ spec.seed);
    net.register_with_latency(spec.domain.clone(), server, latency);
    let net = Arc::new(net);

    let mut browser = Browser::new(Arc::clone(&net), CookiePolicy::AcceptAll, options.seed);
    let mut picker = CookiePicker::new(options.config.clone());

    let paths = spec.page_paths();
    // "Over 25 pages" per the paper, and at least two passes over every
    // distinct path so path-scoped cookies are both set and then tested.
    let target_views = options.min_page_views.max(paths.len() * 2 + 4);
    let mut views = 0usize;
    let mut i = 0usize;
    while views < target_views {
        let path = &paths[i % paths.len()];
        let url = Url::parse(&format!("http://{}{}", spec.domain, path)).expect("valid url");
        browser.visit_with(&url, &mut picker).unwrap_or_else(|e| panic!("visit {url} failed: {e}"));
        browser.think();
        views += 1;
        i += 1;
    }

    let now = browser.now();
    let (persistent, marked) = browser.jar.site_stats(&spec.domain, now);
    let marked_names: Vec<String> = browser
        .jar
        .cookies_for_site(&spec.domain, now)
        .into_iter()
        .filter(|c| c.is_persistent() && c.useful())
        .map(|c| c.name.clone())
        .collect();

    SiteRunResult {
        persistent,
        marked_useful: marked,
        real_useful: spec.useful_cookie_names().len(),
        marked_names,
        records: picker.records().to_vec(),
        jar: browser.jar.clone(),
        net_stats: net.stats(),
        page_views: views,
        spec: spec.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_webworld::{Category, CookieRole, CookieSpec, EffectSize};

    #[test]
    fn tracker_only_site_fully_disabled() {
        let spec = SiteSpec::new("h1.example", Category::News, 77)
            .with_cookie(CookieSpec::tracker("a"))
            .with_cookie(CookieSpec::tracker("b"));
        let r = run_site_training(&spec, &TrainingOptions::default());
        assert_eq!(r.persistent, 2);
        assert_eq!(r.marked_useful, 0);
        assert_eq!(r.real_useful, 0);
        assert!(!r.missed_useful());
        assert!(r.page_views >= 28);
        assert!(r.avg_duration_ms() > 0.0);
    }

    #[test]
    fn preference_site_marks_useful() {
        let spec = SiteSpec::new("h2.example", Category::Shopping, 78)
            .with_cookie(CookieSpec::useful("pref", CookieRole::Preference, EffectSize::Medium));
        let r = run_site_training(&spec, &TrainingOptions::default());
        assert_eq!(r.marked_useful, 1);
        assert!(!r.missed_useful());
        assert!(!r.marking_records().is_empty());
        let sims = &r.marking_records()[0].decision;
        assert!(sims.tree_sim <= 0.85 && sims.text_sim <= 0.85);
    }

    #[test]
    fn deterministic_runs() {
        let spec =
            SiteSpec::new("h3.example", Category::Arts, 79).with_cookie(CookieSpec::tracker("a"));
        let opts = TrainingOptions::default();
        let r1 = run_site_training(&spec, &opts);
        let r2 = run_site_training(&spec, &opts);
        assert_eq!(r1.marked_useful, r2.marked_useful);
        assert_eq!(r1.records.len(), r2.records.len());
        // Similarity scores are bit-identical across runs.
        for (a, b) in r1.records.iter().zip(&r2.records) {
            assert_eq!(a.decision.tree_sim, b.decision.tree_sim);
            assert_eq!(a.decision.text_sim, b.decision.text_sim);
        }
    }
}
