//! Shared experiment harness: drives CookiePicker over synthetic site
//! populations and aggregates per-site outcomes in the shape of the paper's
//! tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod table;

pub use experiments::{
    run_sites_parallel, table1_outcome_json_pretty, table1_rows_json, write_results_json,
};
pub use harness::{run_site_training, SiteRunResult, TrainingOptions};
pub use table::TextTable;
