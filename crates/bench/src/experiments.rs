//! Shared experiment plumbing: the parallel site fan-out used by every
//! multi-site binary, and the machine-readable JSON dumps kept under
//! `results/` for EXPERIMENTS.md bookkeeping.

use std::path::{Path, PathBuf};

use cp_runtime::json::Json;
use cp_runtime::{json, par};
use cp_webworld::{table1_population, SiteSpec};

use crate::harness::{run_site_training, SiteRunResult, TrainingOptions};

/// Trains CookiePicker on every site on worker threads (sites are
/// independent). Results come back in site order regardless of how the
/// OS schedules the workers, so a fixed seed yields identical output.
pub fn run_sites_parallel(sites: &[SiteSpec], opts: &TrainingOptions) -> Vec<SiteRunResult> {
    par::par_map(sites, None, |spec| run_site_training(spec, opts))
}

/// The machine-readable Table 1 rows (one object per site, S1..).
pub fn table1_rows_json(results: &[SiteRunResult]) -> Json {
    Json::Array(
        results
            .iter()
            .enumerate()
            .map(|(i, r)| {
                json!({
                    "site": format!("S{}", i + 1),
                    "host": r.spec.domain.clone(),
                    "persistent": r.persistent,
                    "marked_useful": r.marked_useful,
                    "real_useful": r.real_useful,
                    "avg_detection_ms": r.avg_detection_ms(),
                    "avg_duration_ms": r.avg_duration_ms(),
                    "probes": r.records.len()
                })
            })
            .collect(),
    )
}

/// Runs the full Table 1 experiment for `seed` and renders the
/// seed-determined outcome as pretty-printed JSON: the rows of
/// [`table1_rows_json`] minus the two wall-clock columns
/// (`avg_detection_ms` / `avg_duration_ms` are *measured* with
/// `Instant::now`, so they vary run to run even on one machine). Every
/// other column is a pure function of the seed, so two same-seed calls
/// return byte-identical strings — the property the determinism test pins.
pub fn table1_outcome_json_pretty(seed: u64) -> String {
    let sites = table1_population(seed);
    let opts = TrainingOptions { seed, ..TrainingOptions::default() };
    let results = run_sites_parallel(&sites, &opts);
    Json::Array(
        results
            .iter()
            .enumerate()
            .map(|(i, r)| {
                json!({
                    "site": format!("S{}", i + 1),
                    "host": r.spec.domain.clone(),
                    "persistent": r.persistent,
                    "marked_useful": r.marked_useful,
                    "real_useful": r.real_useful,
                    "probes": r.records.len()
                })
            })
            .collect(),
    )
    .to_pretty()
}

/// Writes `value` pretty-printed to `results/<file_name>`, creating the
/// directory if needed. Returns the path on success, `None` on any I/O
/// failure (the experiment output on stdout is the primary artifact).
pub fn write_results_json(file_name: &str, value: &Json) -> Option<PathBuf> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir).ok()?;
    let path = dir.join(file_name);
    std::fs::write(&path, value.to_pretty()).ok()?;
    Some(path)
}
