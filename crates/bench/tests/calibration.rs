//! Calibration tests: the similarity scores of the synthetic populations
//! must sit in the regimes the detectors are designed for — cookie effects
//! clearly below the 0.85 thresholds, page-dynamics noise clearly above.

use cookiepicker_core::{decide, CookiePickerConfig};
use cp_cookies::SimTime;
use cp_runtime::rng::{SeedableRng, StdRng};
use cp_webworld::render::{render_page, RenderInput};
use cp_webworld::{table1_population, table2_population, SiteSpec};

fn render(
    spec: &SiteSpec,
    path: &str,
    cookies: &[(String, String)],
    noise_seed: u64,
) -> cp_html::Document {
    let input = RenderInput { spec, path, cookies, now: SimTime::from_secs(noise_seed) };
    cp_html::parse_document(&render_page(&input, &mut StdRng::seed_from_u64(noise_seed)))
}

fn pairs(names: &[&str]) -> Vec<(String, String)> {
    names.iter().map(|n| (n.to_string(), "v".to_string())).collect()
}

#[test]
fn s6_preference_cookies_detectable_individually_and_jointly() {
    let sites = table1_population(1);
    let s6 = &sites[5];
    let cfg = CookiePickerConfig::default();
    let regular = render(s6, "/page/1", &pairs(&["pref_main", "pref_aux"]), 1);
    for (label, remaining) in [
        ("strip pref_main", pairs(&["pref_aux"])),
        ("strip pref_aux", pairs(&["pref_main"])),
        ("strip both", vec![]),
    ] {
        let hidden = render(s6, "/page/1", &remaining, 2);
        let d = decide(&regular, &hidden, &cfg);
        assert!(
            d.cookies_caused_difference,
            "{label}: tree={:.3} text={:.3} must be detected",
            d.tree_sim, d.text_sim
        );
        assert!(d.tree_sim >= 0.2, "{label}: effect should not dwarf the page");
    }
}

#[test]
fn tracker_sites_noise_stays_above_thresholds() {
    // For every non-bursty Table-1 site: two renders of the same page with
    // the same cookies (pure dynamics noise) must NOT trip the decision.
    let sites = table1_population(1);
    let cfg = CookiePickerConfig::default();
    for (i, spec) in sites.iter().enumerate() {
        if [0usize, 9, 26].contains(&i) {
            continue; // bursty sites are expected to trip occasionally
        }
        let a = render(spec, "/page/2", &[], 10);
        let b = render(spec, "/page/2", &[], 20);
        let d = decide(&a, &b, &cfg);
        assert!(
            !d.cookies_caused_difference,
            "S{}: noise misread as cookie effect (tree={:.3}, text={:.3})",
            i + 1,
            d.tree_sim,
            d.text_sim
        );
    }
}

#[test]
fn table2_effects_well_separated_from_thresholds() {
    let sites = table2_population(1);
    let cfg = CookiePickerConfig::default();
    for (i, spec) in sites.iter().enumerate() {
        let names: Vec<&str> = spec.cookies.iter().map(|c| c.name.as_str()).collect();
        // Probe on the page where the useful effect lives.
        let path = spec
            .cookies
            .iter()
            .find_map(|c| match &c.scope {
                cp_webworld::PageSelector::Prefix(p) => Some(format!("{p}/home")),
                cp_webworld::PageSelector::All => None,
            })
            .unwrap_or_else(|| "/page/1".to_string());
        let regular = render(spec, &path, &pairs(&names), 1);
        let hidden = render(spec, &path, &[], 2);
        let d = decide(&regular, &hidden, &cfg);
        assert!(d.cookies_caused_difference, "P{} undetected", i + 1);
        assert!(
            d.tree_sim < 0.80 && d.text_sim < 0.80,
            "P{}: margins too thin (tree={:.3}, text={:.3})",
            i + 1,
            d.tree_sim,
            d.text_sim
        );
    }
}

#[test]
fn bursty_sites_trip_detector_without_cookies() {
    // The S1/S10/S27 mechanism: a structural burst in one of the two
    // versions looks exactly like a cookie effect.
    let sites = table1_population(1);
    let s1 = &sites[0];
    let cfg = CookiePickerConfig::default();
    let mut tripped = false;
    for k in 0..30 {
        let a = render(s1, "/", &[], 100 + k);
        let b = render(s1, "/", &[], 200 + k);
        if decide(&a, &b, &cfg).cookies_caused_difference {
            tripped = true;
            break;
        }
    }
    assert!(tripped, "bursty dynamics must eventually mimic a cookie effect");
}
