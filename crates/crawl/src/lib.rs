//! # cp-crawl — the autonomous frontier scheduler
//!
//! Turns the training store into a continuously-refreshed corpus: a
//! priority frontier over the webworld that discovers hosts by keyset
//! enumeration, trains them through FORCUM visits, lets usefulness marks
//! decay on a TTL, and re-verifies decayed marks through the same
//! event-sourced visit path the server uses — no load generator, no
//! operator in the loop.
//!
//! The moving parts:
//!
//! - [`frontier`] — a min-heap of `(due tick, priority class, seq)`
//!   entries, one per host; training beats re-verification beats
//!   discovery at equal due times.
//! - [`politeness`] — per-host token bucket + minimum inter-visit delay;
//!   the scheduler never pops a host before its budget allows.
//! - [`revisit`] — usefulness-TTL bookkeeping: marks age from their
//!   marking tick and decay into an expiry probe exactly once per decay.
//! - [`driver`] — the pluggable visit path: in-process against an
//!   embedded world + store, or HTTP against a live `cp-serve`.
//! - [`crawler`] — the discrete-tick loop tying it together. Same
//!   `(seed, config)` ⇒ byte-identical visit order and final marks,
//!   regardless of worker count.

pub mod crawler;
pub mod driver;
pub mod frontier;
pub mod politeness;
pub mod revisit;

pub use crawler::{crawl, CrawlConfig, CrawlReport, Table1Audit, TICK_MILLIS};
pub use driver::{CrawlVisit, DriveResult, ExpireResult, HttpDriver, InProcessDriver, VisitDriver};
pub use frontier::{Frontier, Priority};
pub use politeness::{HostBudget, Politeness};
pub use revisit::MarkAges;
