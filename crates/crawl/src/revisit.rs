//! Usefulness-TTL bookkeeping: when each mark was earned, and which marks
//! have decayed past the TTL and are owed a re-verification probe.
//!
//! A `BTreeMap` keyed by cookie name keeps iteration (and therefore the
//! expiry batches handed back to the crawler) in a deterministic order.
//! `take_expired` *removes* what it returns, so a decayed mark is handed
//! out exactly once per decay; it only re-enters the map if training
//! re-marks it, which restarts its TTL from the new tick.

use std::collections::BTreeMap;

/// Mark birth ticks for one host.
#[derive(Debug, Clone, Default)]
pub struct MarkAges {
    marked_at: BTreeMap<String, u64>,
}

impl MarkAges {
    /// No marks yet.
    pub fn new() -> Self {
        MarkAges::default()
    }

    /// Records cookies marked at `tick`. Re-marking an expired cookie
    /// restarts its TTL from the new tick.
    pub fn record<S: AsRef<str>>(&mut self, names: &[S], tick: u64) {
        for name in names {
            self.marked_at.insert(name.as_ref().to_string(), tick);
        }
    }

    /// Restores a cookie's original birth tick (used when an expire probe
    /// fails in transit and must be retried later).
    pub fn restore(&mut self, name: &str, marked_at: u64) {
        self.marked_at.entry(name.to_string()).or_insert(marked_at);
    }

    /// The earliest tick at which any tracked mark decays, or `None` when
    /// nothing is tracked.
    pub fn next_expiry(&self, ttl: u64) -> Option<u64> {
        self.marked_at.values().min().map(|t| t + ttl)
    }

    /// Removes and returns `(name, marked_at)` for every mark whose TTL
    /// has elapsed as of `tick`, in name order.
    pub fn take_expired(&mut self, ttl: u64, tick: u64) -> Vec<(String, u64)> {
        let expired: Vec<String> = self
            .marked_at
            .iter()
            .filter(|(_, &at)| at + ttl <= tick)
            .map(|(name, _)| name.clone())
            .collect();
        expired
            .into_iter()
            .map(|name| {
                let at = self.marked_at.remove(&name).expect("selected above");
                (name, at)
            })
            .collect()
    }

    /// Whether any marks are tracked.
    pub fn is_empty(&self) -> bool {
        self.marked_at.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expiry_fires_exactly_once_per_decay() {
        let mut ages = MarkAges::new();
        ages.record(&["ga1", "prefs"], 10);
        assert_eq!(ages.next_expiry(5), Some(15));
        assert!(ages.take_expired(5, 14).is_empty(), "not yet due");
        let first = ages.take_expired(5, 15);
        assert_eq!(first, vec![("ga1".into(), 10), ("prefs".into(), 10)]);
        assert!(ages.take_expired(5, 100).is_empty(), "already taken");
        assert!(ages.is_empty());
        assert_eq!(ages.next_expiry(5), None);
    }

    #[test]
    fn remarking_restarts_the_ttl() {
        let mut ages = MarkAges::new();
        ages.record(&["ga1"], 0);
        assert_eq!(ages.take_expired(4, 4).len(), 1);
        ages.record(&["ga1"], 9);
        assert!(ages.take_expired(4, 12).is_empty(), "fresh TTL from re-mark");
        assert_eq!(ages.take_expired(4, 13), vec![("ga1".into(), 9)]);
    }

    #[test]
    fn restore_rewinds_a_failed_expiry() {
        let mut ages = MarkAges::new();
        ages.record(&["trk0"], 2);
        let taken = ages.take_expired(3, 5);
        assert_eq!(taken.len(), 1);
        ages.restore("trk0", taken[0].1);
        // Still immediately due — the decay was not lost.
        assert_eq!(ages.take_expired(3, 5), vec![("trk0".into(), 2)]);
    }
}
