//! The autonomous crawl loop: discrete-tick scheduling over the frontier.
//!
//! Time is virtual. Each tick the crawler pops at most `workers` due
//! entries (hosts are distinct by the one-entry-per-host invariant),
//! executes them on a worker pool, and processes the outcomes **in pop
//! order**. Pop order is fully determined by the frontier's
//! `(due, class, seq)` key and outcome processing is ordered, so a crawl
//! is a pure function of `(seed, config)` — byte-identical visit order
//! and final marks no matter how the worker threads interleave. When
//! nothing is due the clock fast-forwards to the next due tick, so an
//! idle frontier costs nothing.
//!
//! One tick corresponds to [`TICK_MILLIS`] of simulated time; the retry
//! policy's millisecond backoffs are mapped onto ticks through it.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use cookiepicker_core::RetryPolicy;
use cp_runtime::json::{Json, ToJson};
use cp_serve::metrics::ServiceMetrics;
use cp_webworld::table1_population;
use cp_webworld::universe::{Universe, WorldKind};

use crate::driver::{DriveResult, ExpireResult, VisitDriver};
use crate::frontier::{Frontier, Priority};
use crate::politeness::{HostBudget, Politeness};
use crate::revisit::MarkAges;

/// Simulated milliseconds per scheduler tick. The retry policy's default
/// 250 ms base backoff is exactly one tick.
pub const TICK_MILLIS: u64 = 250;

/// Crawl parameters.
#[derive(Debug, Clone)]
pub struct CrawlConfig {
    /// Seed for the world (must match the server's in HTTP mode).
    pub seed: u64,
    /// Which world the frontier enumerates.
    pub world: WorldKind,
    /// Concurrent visits per tick (worker-pool width).
    pub workers: usize,
    /// Stop after this many virtual ticks (`None` = run to convergence).
    pub ticks: Option<u64>,
    /// Stop after this much wall-clock time (`None` = no wall cap). A
    /// duration-capped run trades determinism for throughput measurement.
    pub duration: Option<Duration>,
    /// Usefulness TTL in ticks: marks older than this decay into the
    /// re-verification queue. `None` = marks never decay (hosts retire
    /// once dormant).
    pub ttl_ticks: Option<u64>,
    /// Per-host politeness budget.
    pub politeness: Politeness,
    /// Retry/backoff policy for inconclusive probes and transport
    /// failures (milliseconds are mapped to ticks via [`TICK_MILLIS`]).
    pub retry: RetryPolicy,
    /// Hosts fetched per keyset-discovery page.
    pub discover_batch: usize,
    /// Discovery refills the frontier whenever it drops below this.
    pub low_water: usize,
    /// Cap on hosts discovered via enumeration (`None` = the whole world).
    pub max_hosts: Option<u64>,
    /// Extra hosts injected into the frontier at tick 0, ahead of
    /// discovery — e.g. stale hosts the world no longer resolves.
    pub extra_hosts: Vec<String>,
    /// Record one `"tick host path"` line per visit (tests; unbounded, so
    /// keep it off for large worlds).
    pub record_log: bool,
}

impl Default for CrawlConfig {
    fn default() -> Self {
        CrawlConfig {
            seed: 7,
            world: WorldKind::Table1,
            workers: 4,
            ticks: None,
            duration: None,
            ttl_ticks: None,
            politeness: Politeness::default(),
            retry: RetryPolicy::default(),
            discover_batch: 256,
            low_water: 64,
            max_hosts: None,
            extra_hosts: Vec::new(),
            record_log: false,
        }
    }
}

/// Table-1 reproduction audit, computed when the crawl ran the Table-1
/// world: the paper's persistent-cookie universe vs what got marked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Audit {
    /// Persistent cookies across the population (the paper counts 103).
    pub persistent: usize,
    /// Cookies marked useful (the paper marks 7).
    pub marked: usize,
    /// Marked cookies that are really useful per the site specs (3).
    pub real: usize,
}

/// What a crawl did.
#[derive(Debug, Clone)]
pub struct CrawlReport {
    /// The world crawled.
    pub world: String,
    /// The population seed.
    pub seed: u64,
    /// Worker-pool width.
    pub workers: usize,
    /// Virtual ticks elapsed.
    pub ticks: u64,
    /// Wall-clock duration, milliseconds.
    pub elapsed_ms: f64,
    /// Visits completed (any outcome the driver returned).
    pub visits: u64,
    /// Visits per wall-clock second.
    pub visits_per_sec: f64,
    /// Hosts discovered via keyset enumeration.
    pub discovered: u64,
    /// Hosts retired (dormant, nothing left to watch).
    pub retired: u64,
    /// TTL-expiry probes delivered.
    pub expiries: u64,
    /// Marks actually dropped by those probes.
    pub expired_marks: u64,
    /// Hosts dropped because the resolver rejected them.
    pub unknown_hosts: u64,
    /// Visits whose probe deferred (inconclusive).
    pub inconclusive: u64,
    /// Backoff reschedules (inconclusive or transport).
    pub backoffs: u64,
    /// Transport failures observed.
    pub transport_errors: u64,
    /// Revisit lag median, in ticks (0 = the frontier keeps up).
    pub revisit_lag_p50_ticks: f64,
    /// Revisit lag 99th percentile, in ticks.
    pub revisit_lag_p99_ticks: f64,
    /// Frontier depth when the crawl stopped.
    pub frontier_depth_final: usize,
    /// Hosts with live crawl state when the crawl stopped.
    pub hosts_tracked_final: usize,
    /// Peak resident set (`VmHWM`), in kB; 0 where unavailable.
    pub max_rss_kb: u64,
    /// FNV-1a digest over the executed `(tick, host, path)` sequence —
    /// two same-seed runs must agree byte-for-byte.
    pub order_digest: String,
    /// Every useful mark after the crawl, as sorted `host cookie` lines.
    pub marks: Vec<String>,
    /// Table-1 audit (Table-1 worlds only).
    pub table1: Option<Table1Audit>,
    /// One `"tick host path"` line per visit, when
    /// [`CrawlConfig::record_log`] was set.
    pub visit_log: Vec<String>,
}

impl ToJson for CrawlReport {
    fn to_json(&self) -> Json {
        let mut json = Json::object()
            .set("world", self.world.as_str())
            .set("seed", self.seed)
            .set("workers", self.workers)
            .set("ticks", self.ticks)
            .set("elapsed_ms", self.elapsed_ms)
            .set("visits", self.visits)
            .set("visits_per_sec", self.visits_per_sec)
            .set("discovered", self.discovered)
            .set("retired", self.retired)
            .set("expiries", self.expiries)
            .set("expired_marks", self.expired_marks)
            .set("unknown_hosts", self.unknown_hosts)
            .set("inconclusive", self.inconclusive)
            .set("backoffs", self.backoffs)
            .set("transport_errors", self.transport_errors)
            .set("revisit_lag_p50_ticks", self.revisit_lag_p50_ticks)
            .set("revisit_lag_p99_ticks", self.revisit_lag_p99_ticks)
            .set("frontier_depth_final", self.frontier_depth_final)
            .set("hosts_tracked_final", self.hosts_tracked_final)
            .set("max_rss_kb", self.max_rss_kb)
            .set("order_digest", self.order_digest.as_str())
            .set("marks_count", self.marks.len());
        if let Some(audit) = &self.table1 {
            json = json.set(
                "table1",
                Json::object()
                    .set("persistent", audit.persistent)
                    .set("marked", audit.marked)
                    .set("real", audit.real),
            );
        }
        json
    }
}

/// Per-host crawl state. Dropped when the host retires or is rejected —
/// the resident footprint scales with the *active* frontier, not the
/// world.
struct HostState {
    /// Canonical page paths, visited round-robin.
    paths: Vec<String>,
    /// Next round-robin index into `paths`.
    next_path: usize,
    /// Per-path cookie jar: exactly the `set_cookies` the last visit to
    /// that path returned. Presenting the path-scoped jar (rather than a
    /// cumulative union) reproduces browser cookie-scope semantics — a
    /// cumulative jar lets section trackers piggyback into probe groups
    /// and over-marks the Table-1 world.
    jar: HashMap<String, Vec<String>>,
    /// Politeness budget.
    budget: HostBudget,
    /// Consecutive failed attempts (inconclusive or transport).
    attempts: u32,
    /// Birth ticks of this host's usefulness marks.
    ages: MarkAges,
}

/// One scheduled unit of work for the worker pool.
enum Job {
    Visit { host: String, path: String, cookie: Option<String> },
    Expire { host: String, cookies: Vec<(String, u64)> },
}

enum JobResult {
    Visit(DriveResult),
    Expire(ExpireResult),
}

/// Runs a crawl to completion (convergence, tick budget, or wall cap) and
/// reports. Crawl-side counters land on `metrics` (`cp_crawl_*`); in
/// in-process mode pass the driver's registry so one scrape shows both
/// sides.
pub fn crawl(
    config: &CrawlConfig,
    driver: &dyn VisitDriver,
    metrics: &ServiceMetrics,
) -> CrawlReport {
    let universe = Universe::new(config.seed, config.world);
    let workers = config.workers.max(1);
    let mut frontier = Frontier::new();
    let mut states: HashMap<String, HostState> = HashMap::new();
    let mut cursor: Option<String> = None;
    let mut exhausted = false;
    let mut discovered = 0u64;
    let mut tick = 0u64;
    let mut digest = Digest::new();
    let started = Instant::now();

    let mut report = CrawlReport {
        world: config.world.to_string(),
        seed: config.seed,
        workers,
        ticks: 0,
        elapsed_ms: 0.0,
        visits: 0,
        visits_per_sec: 0.0,
        discovered: 0,
        retired: 0,
        expiries: 0,
        expired_marks: 0,
        unknown_hosts: 0,
        inconclusive: 0,
        backoffs: 0,
        transport_errors: 0,
        revisit_lag_p50_ticks: 0.0,
        revisit_lag_p99_ticks: 0.0,
        frontier_depth_final: 0,
        hosts_tracked_final: 0,
        max_rss_kb: 0,
        order_digest: String::new(),
        marks: Vec::new(),
        table1: None,
        visit_log: Vec::new(),
    };

    for host in &config.extra_hosts {
        frontier.push(host.clone(), 0, Priority::Discover);
    }

    loop {
        if config.ticks.is_some_and(|max| tick >= max) {
            break;
        }
        if config.duration.is_some_and(|limit| started.elapsed() >= limit) {
            break;
        }

        // Incremental discovery: refill only when the frontier runs low,
        // so a million-host world never materializes more than a page or
        // two of hosts at a time.
        while !exhausted && frontier.len() < config.low_water {
            let room = config.max_hosts.map_or(u64::MAX, |m| m.saturating_sub(discovered));
            let want = (config.discover_batch.max(1) as u64).min(room) as usize;
            if want == 0 {
                exhausted = true;
                break;
            }
            match universe.hosts_after(cursor.as_deref(), want) {
                Some(page) if !page.is_empty() => {
                    cursor = page.last().cloned();
                    discovered += page.len() as u64;
                    metrics.crawl_discovered_total.add(page.len() as u64);
                    let short = page.len() < want;
                    for host in page {
                        frontier.push(host, tick, Priority::Discover);
                    }
                    if short {
                        exhausted = true;
                    }
                }
                _ => exhausted = true,
            }
        }

        if frontier.is_empty() {
            break; // converged: nothing scheduled, nothing left to discover
        }

        // Fast-forward idle time, then re-check the tick budget.
        let next_due = frontier.next_due().expect("frontier is non-empty");
        if next_due > tick {
            tick = next_due;
            if config.ticks.is_some_and(|max| tick >= max) {
                break;
            }
        }

        // Pop this tick's batch: at most `workers` due entries, hosts
        // distinct by construction.
        let mut jobs: Vec<Job> = Vec::with_capacity(workers);
        while jobs.len() < workers {
            let Some(entry) = frontier.pop_due(tick) else { break };
            metrics.crawl_revisit_lag.observe(tick - entry.due);
            let state = states.entry(entry.host.clone()).or_insert_with(|| HostState {
                paths: universe
                    .derive(&entry.host)
                    .map(|spec| spec.page_paths())
                    .filter(|paths| !paths.is_empty())
                    .unwrap_or_else(|| vec!["/".to_string()]),
                next_path: 0,
                jar: HashMap::new(),
                budget: HostBudget::new(&config.politeness),
                attempts: 0,
                ages: MarkAges::new(),
            });
            if entry.class == Priority::TtlWait {
                let ttl = config.ttl_ticks.expect("TtlWait scheduled only with a TTL");
                let cookies = state.ages.take_expired(ttl, tick);
                if cookies.is_empty() {
                    // Re-marked since parking; park again (or retire).
                    match state.ages.next_expiry(ttl) {
                        Some(due) => {
                            frontier.push(entry.host, due.max(tick + 1), Priority::TtlWait)
                        }
                        None => {
                            states.remove(&entry.host);
                            report.retired += 1;
                        }
                    }
                    continue;
                }
                jobs.push(Job::Expire { host: entry.host, cookies });
            } else {
                let path = state.paths[state.next_path % state.paths.len()].clone();
                let cookie =
                    state.jar.get(&path).filter(|jar| !jar.is_empty()).map(|jar| jar.join("; "));
                state.budget.spend(&config.politeness, tick);
                jobs.push(Job::Visit { host: entry.host, path, cookie });
            }
        }
        metrics.crawl_frontier_depth.set(frontier.len() as i64);
        if jobs.is_empty() {
            tick += 1;
            continue;
        }

        // Execute concurrently; results come back in pop order, so the
        // sequential outcome processing below is deterministic.
        let results = cp_runtime::par::par_map_indexed(&jobs, Some(workers), |_, job| match job {
            Job::Visit { host, path, cookie } => {
                JobResult::Visit(driver.visit(host, path, cookie.as_deref()))
            }
            Job::Expire { host, cookies } => {
                let names: Vec<String> = cookies.iter().map(|(n, _)| n.clone()).collect();
                JobResult::Expire(driver.expire(host, &names))
            }
        });

        for (job, result) in jobs.into_iter().zip(results) {
            match (job, result) {
                (Job::Visit { host, path, .. }, JobResult::Visit(outcome)) => {
                    apply_visit(
                        config,
                        metrics,
                        &mut frontier,
                        &mut states,
                        &mut report,
                        &mut digest,
                        tick,
                        host,
                        path,
                        outcome,
                    );
                }
                (Job::Expire { host, cookies }, JobResult::Expire(outcome)) => {
                    apply_expire(
                        config,
                        metrics,
                        &mut frontier,
                        &mut states,
                        &mut report,
                        &mut digest,
                        tick,
                        host,
                        cookies,
                        outcome,
                    );
                }
                _ => unreachable!("job kinds round-trip through the pool"),
            }
        }
        tick += 1;
    }

    let elapsed = started.elapsed();
    report.ticks = tick;
    report.elapsed_ms = elapsed.as_secs_f64() * 1_000.0;
    report.visits_per_sec = if elapsed.as_secs_f64() > 0.0 {
        report.visits as f64 / elapsed.as_secs_f64()
    } else {
        0.0
    };
    report.discovered = discovered;
    report.revisit_lag_p50_ticks = metrics.crawl_revisit_lag.quantile_micros(0.50);
    report.revisit_lag_p99_ticks = metrics.crawl_revisit_lag.quantile_micros(0.99);
    report.frontier_depth_final = frontier.len();
    metrics.crawl_frontier_depth.set(frontier.len() as i64);
    report.hosts_tracked_final = states.len();
    report.max_rss_kb = max_rss_kb();
    report.order_digest = digest.hex();
    report.marks = driver.marks();
    if config.world == WorldKind::Table1 {
        report.table1 = Some(table1_audit(config.seed, &report.marks));
    }
    report
}

/// Processes one visit outcome (called in pop order).
#[allow(clippy::too_many_arguments)] // one scheduler step's worth of context
fn apply_visit(
    config: &CrawlConfig,
    metrics: &ServiceMetrics,
    frontier: &mut Frontier,
    states: &mut HashMap<String, HostState>,
    report: &mut CrawlReport,
    digest: &mut Digest,
    tick: u64,
    host: String,
    path: String,
    outcome: DriveResult,
) {
    match outcome {
        DriveResult::Visited(visit) => {
            report.visits += 1;
            metrics.crawl_visits_total.inc();
            digest.update(tick, &host, &path);
            if config.record_log {
                report.visit_log.push(format!("{tick} {host} {path}"));
            }
            let state = states.get_mut(&host).expect("visited hosts have state");
            if !visit.marked_now.is_empty() {
                state.ages.record(&visit.marked_now, tick);
            }
            state.jar.insert(path, visit.set_cookies);
            if let Some(_reason) = visit.inconclusive {
                // The probe deferred: revisit the same path under backoff
                // so the group is re-tested, not skipped.
                report.inconclusive += 1;
                metrics.crawl_inconclusive_total.inc();
                reschedule_backoff(
                    config,
                    metrics,
                    frontier,
                    report,
                    state,
                    tick,
                    host,
                    Priority::Training,
                );
                return;
            }
            state.attempts = 0;
            state.next_path += 1;
            if visit.training_active {
                let due = state.budget.earliest(&config.politeness, tick + 1);
                frontier.push(host, due, Priority::Training);
            } else {
                park_or_retire(config, frontier, states, report, tick, host);
            }
        }
        DriveResult::UnknownHost => {
            drop_unknown(metrics, states, report, &host);
        }
        DriveResult::Transport(error) => {
            report.transport_errors += 1;
            eprintln!("cp-crawl: visit to {host} failed in transit: {error}");
            let state = states.get_mut(&host).expect("visited hosts have state");
            reschedule_backoff(
                config,
                metrics,
                frontier,
                report,
                state,
                tick,
                host,
                Priority::Training,
            );
        }
    }
}

/// Processes one expiry outcome (called in pop order).
#[allow(clippy::too_many_arguments)] // one scheduler step's worth of context
fn apply_expire(
    config: &CrawlConfig,
    metrics: &ServiceMetrics,
    frontier: &mut Frontier,
    states: &mut HashMap<String, HostState>,
    report: &mut CrawlReport,
    digest: &mut Digest,
    tick: u64,
    host: String,
    cookies: Vec<(String, u64)>,
    outcome: ExpireResult,
) {
    match outcome {
        ExpireResult::Expired(n) => {
            report.expiries += 1;
            report.expired_marks += n as u64;
            metrics.crawl_expired_marks_total.add(n as u64);
            digest.update(tick, &host, "!expire");
            if n > 0 {
                // Training restarted: re-verify through the normal visit
                // path under the politeness budget.
                let state = states.get_mut(&host).expect("expiring hosts have state");
                state.attempts = 0;
                let due = state.budget.earliest(&config.politeness, tick + 1);
                frontier.push(host, due, Priority::Reverify);
            } else {
                // Nothing was marked on the training side; park on the
                // remaining ages or retire.
                park_or_retire(config, frontier, states, report, tick, host);
            }
        }
        ExpireResult::UnknownHost => {
            drop_unknown(metrics, states, report, &host);
        }
        ExpireResult::Transport(error) => {
            report.transport_errors += 1;
            eprintln!("cp-crawl: expire on {host} failed in transit: {error}");
            let state = states.get_mut(&host).expect("expiring hosts have state");
            // The decay was not delivered: restore the birth ticks so the
            // retry's `take_expired` hands out the same batch.
            for (name, marked_at) in &cookies {
                state.ages.restore(name, *marked_at);
            }
            reschedule_backoff(
                config,
                metrics,
                frontier,
                report,
                state,
                tick,
                host,
                Priority::TtlWait,
            );
        }
    }
}

/// Requeues a failed host under the retry policy: seeded jittered
/// exponential backoff while the budget lasts, then one deadline-floor
/// pause before the cycle restarts.
#[allow(clippy::too_many_arguments)] // one scheduler step's worth of context
fn reschedule_backoff(
    config: &CrawlConfig,
    metrics: &ServiceMetrics,
    frontier: &mut Frontier,
    report: &mut CrawlReport,
    state: &mut HostState,
    tick: u64,
    host: String,
    class: Priority,
) {
    state.attempts += 1;
    report.backoffs += 1;
    metrics.crawl_backoff_total.inc();
    let pause = if state.attempts > config.retry.max_retries {
        state.attempts = 0;
        (config.retry.deadline_floor.as_millis() / TICK_MILLIS).max(1)
    } else {
        backoff_ticks(&config.retry, config.seed, &host, state.attempts)
    };
    let due = state.budget.earliest(&config.politeness, tick + pause);
    frontier.push(host, due, class);
}

/// A dormant host either parks until its oldest mark decays (TTL mode) or
/// retires outright, releasing its state.
fn park_or_retire(
    config: &CrawlConfig,
    frontier: &mut Frontier,
    states: &mut HashMap<String, HostState>,
    report: &mut CrawlReport,
    tick: u64,
    host: String,
) {
    let state = states.get_mut(&host).expect("host has state");
    match config.ttl_ticks.and_then(|ttl| state.ages.next_expiry(ttl)) {
        Some(due) => frontier.push(host, due.max(tick + 1), Priority::TtlWait),
        None => {
            states.remove(&host);
            report.retired += 1;
        }
    }
}

/// Drops a resolver-rejected host: counted, logged once, never requeued —
/// a stale frontier entry cannot loop.
fn drop_unknown(
    metrics: &ServiceMetrics,
    states: &mut HashMap<String, HostState>,
    report: &mut CrawlReport,
    host: &str,
) {
    report.unknown_hosts += 1;
    metrics.crawl_unknown_host_total.inc();
    eprintln!("cp-crawl: host {host} rejected by the resolver; dropped from the frontier");
    states.remove(host);
}

/// Backoff for retry number `attempt` (1-based), in ticks: the policy's
/// base doubles per attempt and is scaled by a deterministic jitter factor
/// drawn from `(seed, host, attempt)` — reproducible, but uncorrelated
/// across hosts so synchronized failures do not re-arrive in lockstep.
fn backoff_ticks(retry: &RetryPolicy, seed: u64, host: &str, attempt: u32) -> u64 {
    let base_ms = retry.backoff.as_millis().max(1) << (attempt - 1).min(16);
    let jitter = retry.jitter.clamp(0.0, 1.0);
    let unit = (fnv_key(seed, host, attempt) >> 11) as f64 / (1u64 << 53) as f64;
    let factor = 1.0 - jitter + 2.0 * jitter * unit;
    ((base_ms as f64 * factor) / TICK_MILLIS as f64).ceil().max(1.0) as u64
}

fn fnv_key(seed: u64, host: &str, attempt: u32) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for b in host.bytes().chain(attempt.to_le_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Streaming FNV-1a over the executed work sequence.
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, tick: u64, host: &str, path: &str) {
        for b in
            tick.to_le_bytes().into_iter().chain(host.bytes()).chain([0xFF]).chain(path.bytes())
        {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

/// Audits marks against the Table-1 population specs.
fn table1_audit(seed: u64, marks: &[String]) -> Table1Audit {
    let specs = table1_population(seed);
    let persistent = specs.iter().map(|s| s.persistent_count()).sum();
    let real = marks
        .iter()
        .filter_map(|line| line.split_once(' '))
        .filter(|(host, cookie)| {
            specs
                .iter()
                .find(|s| s.domain == *host)
                .is_some_and(|s| s.useful_cookie_names().iter().any(|n| n == cookie))
        })
        .count();
    Table1Audit { persistent, marked: marks.len(), real }
}

/// Peak resident set size (`VmHWM` from `/proc/self/status`), in kB.
/// Returns 0 where procfs is unavailable.
pub fn max_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|line| line.split_whitespace().nth(1).and_then(|kb| kb.parse().ok()))
        })
        .unwrap_or(0)
}
