//! Per-host politeness budgets: a token bucket plus a minimum inter-visit
//! delay, both measured in scheduler ticks.
//!
//! The two limits compose: the minimum delay spaces *consecutive* visits,
//! the bucket bounds the *sustained* rate. A host can absorb a short burst
//! (up to `burst` tokens at `min_delay_ticks` spacing) and then settles to
//! one visit per `refill_ticks`. Everything is integer arithmetic on
//! ticks, so the budget is exactly reproducible across runs.

/// The crawl-wide politeness policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Politeness {
    /// Minimum ticks between two visits to the same host.
    pub min_delay_ticks: u64,
    /// Token-bucket capacity: visits a host can absorb back-to-back
    /// (subject to `min_delay_ticks`) before the refill rate binds.
    pub burst: u32,
    /// Ticks to earn one token back. The sustained per-host visit rate is
    /// one visit per `refill_ticks`.
    pub refill_ticks: u64,
}

impl Default for Politeness {
    fn default() -> Self {
        Politeness { min_delay_ticks: 1, burst: 2, refill_ticks: 3 }
    }
}

/// One host's budget state.
#[derive(Debug, Clone)]
pub struct HostBudget {
    tokens: u32,
    /// Tick the bucket last earned (or was observed full) at.
    last_refill: u64,
    /// Tick of the host's most recent visit.
    last_visit: Option<u64>,
}

impl HostBudget {
    /// A full bucket as of tick 0.
    pub fn new(policy: &Politeness) -> Self {
        HostBudget { tokens: policy.burst, last_refill: 0, last_visit: None }
    }

    /// Accrues tokens earned up to `tick`. While the bucket is full the
    /// refill clock tracks `tick`, so idle time never banks extra burst.
    fn refresh(&mut self, policy: &Politeness, tick: u64) {
        if self.tokens >= policy.burst || policy.refill_ticks == 0 {
            self.tokens = policy.burst;
            self.last_refill = tick.max(self.last_refill);
            return;
        }
        let earned = tick.saturating_sub(self.last_refill) / policy.refill_ticks;
        let earned = (earned.min(u64::from(policy.burst)) as u32).min(policy.burst - self.tokens);
        self.tokens += earned;
        self.last_refill += u64::from(earned) * policy.refill_ticks;
        if self.tokens >= policy.burst {
            self.last_refill = tick;
        }
    }

    /// The earliest tick `>= tick` at which the next visit is allowed.
    pub fn earliest(&mut self, policy: &Politeness, tick: u64) -> u64 {
        self.refresh(policy, tick);
        let spaced = self.last_visit.map_or(tick, |t| t + policy.min_delay_ticks).max(tick);
        if self.tokens > 0 {
            spaced
        } else {
            spaced.max(self.last_refill + policy.refill_ticks)
        }
    }

    /// Consumes one token for a visit at `tick`. The caller schedules via
    /// [`earliest`](Self::earliest), so a token is always available.
    pub fn spend(&mut self, policy: &Politeness, tick: u64) {
        self.refresh(policy, tick);
        debug_assert!(self.tokens > 0, "spend without earliest() scheduling");
        self.tokens = self.tokens.saturating_sub(1);
        self.last_visit = Some(tick);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_delay_spaces_consecutive_visits() {
        let policy = Politeness { min_delay_ticks: 4, burst: 10, refill_ticks: 1 };
        let mut budget = HostBudget::new(&policy);
        let first = budget.earliest(&policy, 0);
        assert_eq!(first, 0);
        budget.spend(&policy, first);
        assert_eq!(budget.earliest(&policy, 1), 4, "next visit waits out the delay");
        budget.spend(&policy, 4);
        assert_eq!(budget.earliest(&policy, 5), 8);
    }

    #[test]
    fn bucket_bounds_the_sustained_rate() {
        let policy = Politeness { min_delay_ticks: 1, burst: 2, refill_ticks: 5 };
        let mut budget = HostBudget::new(&policy);
        // Burst of two at min-delay spacing...
        budget.spend(&policy, 0);
        assert_eq!(budget.earliest(&policy, 1), 1);
        budget.spend(&policy, 1);
        // ...then the refill rate binds: the bucket emptied at tick 1 and
        // earns its next token 5 ticks after the last accrual point.
        let next = budget.earliest(&policy, 2);
        assert!(next >= 5, "sustained rate is one visit per refill_ticks, got {next}");
        budget.spend(&policy, next);
        let after = budget.earliest(&policy, next + 1);
        assert!(after >= next + policy.refill_ticks - 1);
    }

    #[test]
    fn idle_time_does_not_bank_extra_burst() {
        let policy = Politeness { min_delay_ticks: 1, burst: 2, refill_ticks: 3 };
        let mut budget = HostBudget::new(&policy);
        budget.spend(&policy, 0);
        budget.spend(&policy, 1);
        // Long idle: the bucket refills to capacity and no further.
        assert_eq!(budget.earliest(&policy, 1_000), 1_000);
        budget.spend(&policy, 1_000);
        budget.spend(&policy, 1_001);
        // Both banked tokens spent: the refill rate binds again.
        assert!(budget.earliest(&policy, 1_002) >= 1_003);
    }

    #[test]
    fn budget_is_deterministic() {
        let policy = Politeness::default();
        let run = || {
            let mut budget = HostBudget::new(&policy);
            let mut ticks = Vec::new();
            let mut tick = 0;
            for _ in 0..20 {
                tick = budget.earliest(&policy, tick);
                budget.spend(&policy, tick);
                ticks.push(tick);
                tick += 1;
            }
            ticks
        };
        assert_eq!(run(), run());
    }
}
