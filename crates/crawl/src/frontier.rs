//! The priority frontier: a min-heap of scheduled host actions.
//!
//! Every tracked host has **at most one** entry in the heap, keyed by
//! `(due_tick, priority class, insertion seq)`. The monotone sequence
//! number breaks every tie, so pop order is a total order determined
//! entirely by the schedule — never by hash iteration or thread timing.
//! That single property is what lets the crawler run its visits on a
//! worker pool and still produce byte-identical runs.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Why a host is scheduled, in descending urgency. Training visits go
/// first (they retire hosts and free budget), re-verification after a TTL
/// expiry next, first contact with a freshly discovered host after that,
/// and dormant hosts parked until their marks decay last.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// FORCUM training is active: visit again to drive it to stability.
    Training = 0,
    /// A mark just expired: re-probe the site through the normal path.
    Reverify = 1,
    /// Newly discovered host awaiting its first visit.
    Discover = 2,
    /// Dormant and marked: parked until the usefulness TTL decays.
    TtlWait = 3,
}

/// One scheduled frontier entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheduled {
    /// Tick the action becomes due.
    pub due: u64,
    /// Urgency class (ties broken by `seq`).
    pub class: Priority,
    /// Monotone insertion number — the deterministic tie-break.
    pub seq: u64,
    /// The host to act on.
    pub host: String,
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.due, self.class, self.seq).cmp(&(other.due, other.class, other.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The scheduler's priority queue.
#[derive(Debug, Default)]
pub struct Frontier {
    heap: BinaryHeap<std::cmp::Reverse<Scheduled>>,
    seq: u64,
}

impl Frontier {
    /// An empty frontier.
    pub fn new() -> Self {
        Frontier::default()
    }

    /// Schedules `host` for `class` at `due`. The caller maintains the
    /// one-entry-per-host invariant (a host is pushed only after its
    /// previous entry was popped and processed).
    pub fn push(&mut self, host: String, due: u64, class: Priority) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(std::cmp::Reverse(Scheduled { due, class, seq, host }));
    }

    /// Pops the most urgent entry due at or before `tick`, if any.
    pub fn pop_due(&mut self, tick: u64) -> Option<Scheduled> {
        if self.heap.peek().is_some_and(|e| e.0.due <= tick) {
            self.heap.pop().map(|e| e.0)
        } else {
            None
        }
    }

    /// The due tick of the most urgent entry (for fast-forwarding idle
    /// ticks), or `None` when empty.
    pub fn next_due(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.0.due)
    }

    /// Scheduled entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the frontier is drained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_by_due_then_class_then_seq() {
        let mut frontier = Frontier::new();
        frontier.push("late.example".into(), 9, Priority::Training);
        frontier.push("discover.example".into(), 3, Priority::Discover);
        frontier.push("training.example".into(), 3, Priority::Training);
        frontier.push("reverify.example".into(), 3, Priority::Reverify);
        frontier.push("first.example".into(), 1, Priority::TtlWait);
        let order: Vec<String> =
            std::iter::from_fn(|| frontier.pop_due(100).map(|s| s.host)).collect();
        assert_eq!(
            order,
            [
                "first.example",
                "training.example",
                "reverify.example",
                "discover.example",
                "late.example"
            ]
        );
    }

    #[test]
    fn seq_breaks_exact_ties_in_insertion_order() {
        let mut frontier = Frontier::new();
        for host in ["c.example", "a.example", "b.example"] {
            frontier.push(host.into(), 5, Priority::Discover);
        }
        let order: Vec<String> =
            std::iter::from_fn(|| frontier.pop_due(5).map(|s| s.host)).collect();
        assert_eq!(order, ["c.example", "a.example", "b.example"], "insertion order, not name");
    }

    #[test]
    fn pop_due_respects_the_clock() {
        let mut frontier = Frontier::new();
        frontier.push("soon.example".into(), 2, Priority::Training);
        frontier.push("later.example".into(), 7, Priority::Training);
        assert!(frontier.pop_due(1).is_none());
        assert_eq!(frontier.next_due(), Some(2));
        assert_eq!(frontier.pop_due(2).unwrap().host, "soon.example");
        assert!(frontier.pop_due(2).is_none(), "later entry not yet due");
        assert_eq!(frontier.next_due(), Some(7));
        assert_eq!(frontier.len(), 1);
        assert_eq!(frontier.pop_due(7).unwrap().host, "later.example");
        assert!(frontier.is_empty());
        assert_eq!(frontier.next_due(), None);
    }
}
