//! Visit drivers: the crawler's pluggable path to the world.
//!
//! The scheduler never talks to the store or the network directly — it
//! hands `(host, path, cookie header)` to a [`VisitDriver`] and reacts to
//! the typed result. [`InProcessDriver`] executes visits against an
//! embedded world and sharded store in this process (what `cookiepicker
//! crawl` uses by default); [`HttpDriver`] speaks to a live `cp-serve`
//! over `POST /v1/visit` / `POST /v1/expire`, so the same crawl loop can
//! refresh a remote corpus. Both return identical data for identical
//! worlds, which `tests` pin.

use std::time::Duration;

use cookiepicker_core::{CookiePickerConfig, RetryPolicy};
use cp_runtime::json::Json;
use cp_runtime::sync::Mutex;
use cp_serve::loadgen::Client;
use cp_serve::metrics::ServiceMetrics;
use cp_serve::wal::{EventKind, VisitEvent};
use cp_serve::world::VisitPlan;
use cp_serve::{AnalysisCache, EmbeddedWorld, ShardedStore};
use std::sync::Arc;

/// What one visit did, from the crawler's point of view.
#[derive(Debug, Clone, PartialEq)]
pub struct CrawlVisit {
    /// Cookie names newly marked useful by this visit.
    pub marked_now: Vec<String>,
    /// Total marks for the site after this visit.
    pub marked_total: usize,
    /// Whether FORCUM training is still active for the site.
    pub training_active: bool,
    /// `name=value` cookies the site issued for the visited path — the
    /// crawler's per-path jar entry for its next visit there.
    pub set_cookies: Vec<String>,
    /// Inconclusive-reason label when the probe deferred.
    pub inconclusive: Option<String>,
}

/// Result of driving one visit.
#[derive(Debug, Clone, PartialEq)]
pub enum DriveResult {
    /// The visit ran; here is what happened.
    Visited(CrawlVisit),
    /// The resolver rejected the host — drop it from the frontier.
    UnknownHost,
    /// The visit could not be delivered (HTTP transport failure, WAL
    /// append failure); retry under the backoff policy.
    Transport(String),
}

/// Result of driving one mark-expiry probe.
#[derive(Debug, Clone, PartialEq)]
pub enum ExpireResult {
    /// The expiry applied; this many marks were actually dropped.
    Expired(usize),
    /// The resolver rejected the host.
    UnknownHost,
    /// The expiry could not be delivered; the crawler restores the mark
    /// ages and retries.
    Transport(String),
}

/// The crawler's path to the world. Implementations must be callable from
/// the worker pool, hence `Sync`.
pub trait VisitDriver: Sync {
    /// Drives one FORCUM visit.
    fn visit(&self, host: &str, path: &str, cookie_header: Option<&str>) -> DriveResult;

    /// Expires `cookies`' usefulness marks on `host` (the ones still
    /// marked), restarting the site's training.
    fn expire(&self, host: &str, cookies: &[String]) -> ExpireResult;

    /// Every useful mark, as sorted `host cookie` lines.
    fn marks(&self) -> Vec<String>;
}

/// Drives visits against an [`EmbeddedWorld`] + [`ShardedStore`] in this
/// process — the same plan → journal → apply → finish sequence as the
/// server's `POST /v1/visit`, minus the TCP.
pub struct InProcessDriver {
    world: EmbeddedWorld,
    store: ShardedStore,
    config: CookiePickerConfig,
    analyses: AnalysisCache,
    metrics: Arc<ServiceMetrics>,
}

impl InProcessDriver {
    /// Wires a driver from its parts. The store may be durable (visits go
    /// through `transact`, so WAL appends still gate acks) or in-memory.
    pub fn new(
        world: EmbeddedWorld,
        store: ShardedStore,
        config: CookiePickerConfig,
        analyses: AnalysisCache,
        metrics: Arc<ServiceMetrics>,
    ) -> Self {
        InProcessDriver { world, store, config, analyses, metrics }
    }

    /// The embedded world this driver visits.
    pub fn world(&self) -> &EmbeddedWorld {
        &self.world
    }

    /// The training store behind this driver.
    pub fn store(&self) -> &ShardedStore {
        &self.store
    }
}

impl VisitDriver for InProcessDriver {
    fn visit(&self, host: &str, path: &str, cookie_header: Option<&str>) -> DriveResult {
        if !self.world.contains(host) {
            // Same accounting as the server's 404: the rejection shows up
            // in cp_site_derive_total{result="unknown"}.
            self.metrics.record_site_derive("unknown", None);
            return DriveResult::UnknownHost;
        }
        let outcome = self.store.transact(
            host,
            |entry| match self.world.plan_visit(
                entry,
                host,
                path,
                cookie_header,
                &self.config,
                &self.analyses,
                &self.metrics,
            ) {
                Some((event, plan)) => (Some(event), Some(plan)),
                None => (None, None),
            },
            |entry, marked_now, plan: Option<VisitPlan>| plan.map(|p| p.finish(entry, marked_now)),
        );
        match outcome {
            Ok(Some(out)) => {
                if let Some(record) = &out.record {
                    self.metrics.record_verdict(record.decision.cookies_caused_difference);
                }
                DriveResult::Visited(CrawlVisit {
                    marked_now: out.marked_now,
                    marked_total: out.marked_total,
                    training_active: out.training_active,
                    set_cookies: out.set_cookies,
                    inconclusive: out.inconclusive,
                })
            }
            Ok(None) => DriveResult::UnknownHost,
            Err(e) => DriveResult::Transport(e.to_string()),
        }
    }

    fn expire(&self, host: &str, cookies: &[String]) -> ExpireResult {
        if !self.world.contains(host) {
            self.metrics.record_site_derive("unknown", None);
            return ExpireResult::UnknownHost;
        }
        let result = self.store.transact(
            host,
            |entry| {
                // Only cookies still marked expire; the event goes through
                // the same WAL-then-apply path as every other mutation.
                let expired: Vec<String> =
                    cookies.iter().filter(|c| entry.marked.contains(*c)).cloned().collect();
                if expired.is_empty() {
                    (None, 0)
                } else {
                    let n = expired.len();
                    let event = VisitEvent {
                        host: host.to_string(),
                        observed: expired,
                        kind: EventKind::Expire,
                    };
                    (Some(event), n)
                }
            },
            |_, _, n| n,
        );
        match result {
            Ok(n) => ExpireResult::Expired(n),
            Err(e) => ExpireResult::Transport(e.to_string()),
        }
    }

    fn marks(&self) -> Vec<String> {
        self.store.marks()
    }
}

/// Drives visits against a live `cp-serve` over HTTP, with a small pool of
/// keep-alive connections (one per concurrent worker, grown on demand).
pub struct HttpDriver {
    host: String,
    port: u16,
    retries: u32,
    backoff: Duration,
    pool: Mutex<Vec<Client>>,
}

impl HttpDriver {
    /// A driver for the server at `host:port`, retrying per `retry` (the
    /// crawler's [`RetryPolicy`] maps onto the client's transport retries).
    pub fn new(host: &str, port: u16, retry: &RetryPolicy) -> Self {
        HttpDriver {
            host: host.to_string(),
            port,
            retries: retry.max_retries,
            backoff: Duration::from_millis(retry.backoff.as_millis()),
            pool: Mutex::new(Vec::new()),
        }
    }

    /// Runs `f` with a pooled client, returning the client afterwards.
    fn with_client<R>(&self, f: impl FnOnce(&mut Client) -> R) -> R {
        let mut client = self.pool.lock().pop().unwrap_or_else(|| {
            Client::with_policy(&self.host, self.port, self.retries, self.backoff)
        });
        let result = f(&mut client);
        self.pool.lock().push(client);
        result
    }
}

impl VisitDriver for HttpDriver {
    fn visit(&self, host: &str, path: &str, cookie_header: Option<&str>) -> DriveResult {
        let mut payload = Json::object().set("host", host).set("path", path);
        if let Some(cookie) = cookie_header {
            payload = payload.set("cookie", cookie);
        }
        let body = payload.to_compact();
        let response =
            self.with_client(|client| client.request("POST", "/v1/visit", body.as_bytes()));
        let response = match response {
            Ok(response) => response,
            Err(e) => return DriveResult::Transport(e.to_string()),
        };
        match response.status {
            404 => DriveResult::UnknownHost,
            200 => match Json::parse(&response.body_string()) {
                Ok(json) => DriveResult::Visited(CrawlVisit {
                    marked_now: string_array(&json, "marked_now"),
                    marked_total: json.get("marked_total").and_then(Json::as_f64).unwrap_or(0.0)
                        as usize,
                    training_active: json
                        .get("training_active")
                        .and_then(Json::as_bool)
                        .unwrap_or(false),
                    set_cookies: string_array(&json, "set_cookies"),
                    inconclusive: json
                        .get("inconclusive")
                        .and_then(Json::as_str)
                        .map(str::to_string),
                }),
                Err(_) => DriveResult::Transport("unparseable visit response".to_string()),
            },
            status => DriveResult::Transport(format!("visit returned {status}")),
        }
    }

    fn expire(&self, host: &str, cookies: &[String]) -> ExpireResult {
        let body = Json::object().set("host", host).set("cookies", cookies.to_vec()).to_compact();
        let response =
            self.with_client(|client| client.request("POST", "/v1/expire", body.as_bytes()));
        let response = match response {
            Ok(response) => response,
            Err(e) => return ExpireResult::Transport(e.to_string()),
        };
        match response.status {
            404 => ExpireResult::UnknownHost,
            200 => match Json::parse(&response.body_string()) {
                Ok(json) => ExpireResult::Expired(
                    json.get("expired").and_then(Json::as_f64).unwrap_or(0.0) as usize,
                ),
                Err(_) => ExpireResult::Transport("unparseable expire response".to_string()),
            },
            status => ExpireResult::Transport(format!("expire returned {status}")),
        }
    }

    fn marks(&self) -> Vec<String> {
        let response = self.with_client(|client| client.request("GET", "/v1/marks", b""));
        match response {
            Ok(response) if response.status == 200 => {
                response.body_string().lines().map(str::to_string).collect()
            }
            _ => Vec::new(),
        }
    }
}

fn string_array(json: &Json, field: &str) -> Vec<String> {
    json.get(field)
        .and_then(Json::as_array)
        .map(|items| items.iter().filter_map(Json::as_str).map(str::to_string).collect())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_webworld::WorldKind;

    fn driver() -> InProcessDriver {
        let config = CookiePickerConfig::default();
        let store = ShardedStore::new(8, config.stability_window);
        InProcessDriver::new(
            EmbeddedWorld::with_world(7, WorldKind::Table1, 256),
            store,
            config,
            AnalysisCache::new(256),
            Arc::new(ServiceMetrics::new()),
        )
    }

    #[test]
    fn unknown_host_is_rejected_and_counted() {
        let d = driver();
        assert_eq!(d.visit("bogus.example", "/", None), DriveResult::UnknownHost);
        assert_eq!(d.expire("bogus.example", &["x".to_string()]), ExpireResult::UnknownHost);
        assert_eq!(d.metrics.site_derive_count("unknown"), 2);
        assert_eq!(d.store().site_count(), 0, "rejected hosts never enter the store");
    }

    #[test]
    fn visit_expire_round_trip() {
        let d = driver();
        let host = d.world().hosts()[0].clone();
        let first = match d.visit(&host, "/", None) {
            DriveResult::Visited(v) => v,
            other => panic!("expected a visit, got {other:?}"),
        };
        assert!(first.training_active);
        assert!(!first.set_cookies.is_empty());
        // Expiring a never-marked cookie is a no-op (no event journaled).
        assert_eq!(d.expire(&host, &["nope".to_string()]), ExpireResult::Expired(0));
        // Force a mark into the store, then expire it through the driver.
        d.store().with_entry(&host, |e| {
            e.marked.insert("sid".to_string());
        });
        assert_eq!(d.expire(&host, &["sid".to_string()]), ExpireResult::Expired(1));
        assert!(d.marks().is_empty());
        assert!(
            d.store().read_entry(&host, |e| e.forcum.is_active(&host)).unwrap(),
            "expiry restarts training"
        );
    }
}
