//! End-to-end crawls: Table-1 convergence, determinism, politeness,
//! TTL decay, unknown-host handling, and HTTP/in-process parity.

use std::sync::Arc;
use std::sync::Mutex;

use cookiepicker_core::CookiePickerConfig;
use cp_crawl::{
    crawl, CrawlConfig, DriveResult, ExpireResult, HttpDriver, InProcessDriver, Politeness,
    Table1Audit, VisitDriver,
};
use cp_serve::metrics::ServiceMetrics;
use cp_serve::{AnalysisCache, EmbeddedWorld, ShardedStore, WorldKind};

/// The marks the paper's Table-1 world converges to (results/table1.json).
const TABLE1_MARKS: [&str; 7] = [
    "arts1.example ga1",
    "arts1.example trk0",
    "computers2.example pref_aux",
    "computers2.example pref_main",
    "health2.example trk0",
    "news2.example prefs_layout",
    "society1.example trk0",
];

fn driver(seed: u64, world: WorldKind, metrics: &Arc<ServiceMetrics>) -> InProcessDriver {
    let config = CookiePickerConfig::default();
    let store = ShardedStore::new(16, config.stability_window);
    InProcessDriver::new(
        EmbeddedWorld::with_world(seed, world, 256),
        store,
        config,
        AnalysisCache::new(512),
        Arc::clone(metrics),
    )
}

fn run(config: &CrawlConfig) -> cp_crawl::CrawlReport {
    let metrics = Arc::new(ServiceMetrics::new());
    let d = driver(config.seed, config.world, &metrics);
    crawl(config, &d, &metrics)
}

#[test]
fn table1_converges_to_the_paper_numbers_and_is_deterministic() {
    let config =
        CrawlConfig { seed: 7, world: WorldKind::Table1, workers: 4, ..Default::default() };
    let first = run(&config);
    assert_eq!(
        first.table1,
        Some(Table1Audit { persistent: 103, marked: 7, real: 3 }),
        "Table-1 audit off: {:?}",
        first.table1
    );
    assert_eq!(first.marks, TABLE1_MARKS, "marks diverge from results/table1.json");
    assert_eq!(first.frontier_depth_final, 0, "convergence must drain the frontier");
    assert_eq!(first.hosts_tracked_final, 0, "all dormant hosts retire without a TTL");
    assert_eq!(first.discovered, 30);
    assert_eq!(first.unknown_hosts, 0);
    assert!(first.visits > 30, "training needs revisits, saw {}", first.visits);

    // Same (seed, config) ⇒ byte-identical visit order and final marks.
    let second = run(&config);
    assert_eq!(second.order_digest, first.order_digest, "visit order must be reproducible");
    assert_eq!(second.marks, first.marks);
    assert_eq!(second.visits, first.visits);
    assert_eq!(second.ticks, first.ticks);

    // Worker width is part of the schedule (the per-tick pop budget), so
    // the order may differ — but what the crawl learns must not.
    let wide = run(&CrawlConfig { workers: 9, ..config.clone() });
    assert_eq!(wide.marks, first.marks, "worker width must not change what is learned");
    assert_eq!(wide.table1, first.table1);
}

#[test]
fn politeness_is_never_violated() {
    let politeness = Politeness { min_delay_ticks: 3, burst: 2, refill_ticks: 5 };
    let config = CrawlConfig {
        seed: 7,
        world: WorldKind::Table1,
        workers: 8,
        politeness,
        record_log: true,
        ..Default::default()
    };
    let report = run(&config);
    assert!(!report.visit_log.is_empty());

    let mut last_visit: std::collections::HashMap<String, u64> = std::collections::HashMap::new();
    for line in &report.visit_log {
        let mut parts = line.split(' ');
        let tick: u64 = parts.next().unwrap().parse().unwrap();
        let host = parts.next().unwrap().to_string();
        if let Some(prev) = last_visit.get(&host) {
            assert!(
                tick >= prev + politeness.min_delay_ticks,
                "{host} revisited after {} ticks (minimum {})",
                tick - prev,
                politeness.min_delay_ticks
            );
        }
        last_visit.insert(host, tick);
    }
    // The budget slows the crawl but must not change what it learns.
    assert_eq!(report.marks, TABLE1_MARKS);
}

/// Wraps a driver, recording per-host mark and expiry events in call order.
/// Per host the scheduler serializes work (one frontier entry per host), so
/// each host's subsequence of the shared log is causally ordered.
struct RecordingDriver<'a> {
    inner: &'a InProcessDriver,
    events: Mutex<Vec<(String, String, &'static str)>>,
}

impl VisitDriver for RecordingDriver<'_> {
    fn visit(&self, host: &str, path: &str, cookie_header: Option<&str>) -> DriveResult {
        let result = self.inner.visit(host, path, cookie_header);
        if let DriveResult::Visited(v) = &result {
            let mut events = self.events.lock().unwrap();
            for cookie in &v.marked_now {
                events.push((host.to_string(), cookie.clone(), "mark"));
            }
        }
        result
    }

    fn expire(&self, host: &str, cookies: &[String]) -> ExpireResult {
        let result = self.inner.expire(host, cookies);
        let mut events = self.events.lock().unwrap();
        for cookie in cookies {
            events.push((host.to_string(), cookie.clone(), "expire"));
        }
        result
    }

    fn marks(&self) -> Vec<String> {
        self.inner.marks()
    }
}

#[test]
fn ttl_decay_expires_each_mark_exactly_once_then_reverifies() {
    // First find the convergence horizon without a TTL, then rerun with
    // marks decaying and room for at least one full decay + re-verify.
    let base = CrawlConfig { seed: 7, world: WorldKind::Table1, workers: 4, ..Default::default() };
    let horizon = run(&base).ticks;

    let ttl = 64;
    let config =
        CrawlConfig { ttl_ticks: Some(ttl), ticks: Some(horizon + 40 * ttl), ..base.clone() };
    let metrics = Arc::new(ServiceMetrics::new());
    let inner = driver(config.seed, config.world, &metrics);
    let recording = RecordingDriver { inner: &inner, events: Mutex::new(Vec::new()) };
    let report = crawl(&config, &recording, &metrics);

    assert!(report.expiries > 0, "the TTL never fired in {} ticks", report.ticks);
    assert!(report.expired_marks > 0);

    // Exactly once per decay: scanning each (host, cookie) stream, every
    // expiry must consume a mark recorded since the previous expiry — a
    // double-fire would show up as two expires without a mark between.
    let events = recording.events.lock().unwrap();
    let mut armed: std::collections::HashMap<(String, String), bool> =
        std::collections::HashMap::new();
    let mut expiries = 0u64;
    for (host, cookie, kind) in events.iter() {
        let slot = armed.entry((host.clone(), cookie.clone())).or_insert(false);
        match *kind {
            "mark" => *slot = true,
            _ => {
                assert!(*slot, "{host} {cookie} expired twice without an intervening mark");
                *slot = false;
                expiries += 1;
            }
        }
    }
    assert_eq!(expiries, report.expired_marks, "every counted expiry is a journaled decay");

    // Decay is a refresh, not forgetting: re-verification restores the
    // same seven marks the paper's world supports.
    assert_eq!(report.marks, TABLE1_MARKS, "re-verification must reconverge");
}

/// Counts visit attempts per host.
struct CountingDriver<'a> {
    inner: &'a InProcessDriver,
    attempts: Mutex<Vec<String>>,
}

impl VisitDriver for CountingDriver<'_> {
    fn visit(&self, host: &str, path: &str, cookie_header: Option<&str>) -> DriveResult {
        self.attempts.lock().unwrap().push(host.to_string());
        self.inner.visit(host, path, cookie_header)
    }

    fn expire(&self, host: &str, cookies: &[String]) -> ExpireResult {
        self.inner.expire(host, cookies)
    }

    fn marks(&self) -> Vec<String> {
        self.inner.marks()
    }
}

#[test]
fn unknown_hosts_are_dropped_after_one_attempt() {
    // A frontier seeded with a host the resolver rejects: the crawler must
    // count it, drop it, and terminate — never loop on it.
    let config = CrawlConfig {
        seed: 7,
        world: WorldKind::Table1,
        workers: 2,
        max_hosts: Some(0), // suppress discovery: the stale host is alone
        extra_hosts: vec!["bogus.example".to_string()],
        ..Default::default()
    };
    let metrics = Arc::new(ServiceMetrics::new());
    let inner = driver(config.seed, config.world, &metrics);
    let counting = CountingDriver { inner: &inner, attempts: Mutex::new(Vec::new()) };
    let report = crawl(&config, &counting, &metrics);

    assert_eq!(counting.attempts.lock().unwrap().as_slice(), ["bogus.example".to_string()]);
    assert_eq!(report.unknown_hosts, 1);
    assert_eq!(report.visits, 0);
    assert_eq!(metrics.crawl_unknown_host_total.get(), 1);
    assert_eq!(metrics.site_derive_count("unknown"), 1, "the rejection lands in site-derive");
    assert_eq!(report.hosts_tracked_final, 0, "rejected hosts leave no state behind");
    assert!(report.ticks <= 2, "the crawl must stop immediately, ran {} ticks", report.ticks);
}

#[test]
fn http_driver_reaches_the_same_marks_as_in_process() {
    let server = cp_serve::start(cp_serve::ServeConfig {
        seed: 7,
        world: WorldKind::Table1,
        ..Default::default()
    })
    .expect("server starts");

    let config =
        CrawlConfig { seed: 7, world: WorldKind::Table1, workers: 2, ..Default::default() };
    let http = HttpDriver::new("127.0.0.1", server.port(), &config.retry);
    let metrics = Arc::new(ServiceMetrics::new());
    let report = crawl(&config, &http, &metrics);
    server.shutdown();

    assert_eq!(report.marks, TABLE1_MARKS, "the remote corpus must converge identically");
    assert_eq!(report.table1, Some(Table1Audit { persistent: 103, marked: 7, real: 3 }));
    assert_eq!(report.frontier_depth_final, 0);
}
