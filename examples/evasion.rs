//! The §5.3 evasion scenario: a site operator who insists on long-term
//! tracking detects CookiePicker's hidden request and serves it the
//! cookie-enabled page variant, so no difference is ever observable — the
//! tracker gets classified "useless" anyway (which only *blocks* it, so the
//! operator gains nothing), but a *useful* cookie on an evading site would
//! be missed, costing one recovery click.
//!
//! Run with: `cargo run --example evasion`

use std::sync::Arc;

use cookiepicker::browser::Browser;
use cookiepicker::cookies::CookiePolicy;
use cookiepicker::core::{CookiePicker, CookiePickerConfig};
use cookiepicker::net::{SimNetwork, Url};
use cookiepicker::webworld::{Category, CookieRole, CookieSpec, EffectSize, SiteServer, SiteSpec};

fn train(evading: bool) -> Result<(bool, usize), Box<dyn std::error::Error>> {
    let spec = SiteSpec::new("evader.example", Category::Business, 55)
        .with_cookie(CookieSpec::useful("pref", CookieRole::Preference, EffectSize::Medium));
    let server = if evading {
        SiteServer::new(spec).with_hidden_request_evasion()
    } else {
        SiteServer::new(spec)
    };
    let mut net = SimNetwork::new(6);
    net.register("evader.example", server);

    let mut browser = Browser::new(Arc::new(net), CookiePolicy::AcceptAll, 13);
    let mut picker = CookiePicker::new(CookiePickerConfig::default());
    for i in 0..6 {
        let url = Url::parse(&format!("http://evader.example/page/{i}"))?;
        browser.visit_with(&url, &mut picker)?;
        browser.think();
    }
    let marked = browser.jar.iter().any(|c| c.name == "pref" && c.useful());
    Ok((marked, picker.records().len()))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (marked, probes) = train(false)?;
    println!("honest site:   pref marked useful = {marked} ({probes} probes)");

    let (marked, probes) = train(true)?;
    println!("evading site:  pref marked useful = {marked} ({probes} probes)");
    println!();
    println!("The evading operator recognizes the hidden request (it carries the");
    println!("X-Requested-With header a Firefox-extension XHR adds) and renders the");
    println!("cookie-enabled variant for it. Both page versions now match, so the");
    println!("difference test stays silent and the preference cookie is missed —");
    println!("the user fixes it with one backward-error-recovery click (§3.3).");
    println!();
    println!("The paper argues (§5.3) most operators will not bother: evading only");
    println!("protects cookies that do nothing visible, i.e. trackers, and blocking");
    println!("those costs the *user* nothing.");
    Ok(())
}
