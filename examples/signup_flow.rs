//! The sign-up scenario of Table 2 (P3/P5): a members-only area breaks
//! without its registration cookie. Shows detection of the sign-up wall,
//! and the §3.3 **backward error recovery** button for the error case
//! where a useful cookie was not (yet) identified.
//!
//! Run with: `cargo run --example signup_flow`

use std::sync::Arc;

use cookiepicker::browser::Browser;
use cookiepicker::cookies::CookiePolicy;
use cookiepicker::core::{CookiePicker, CookiePickerConfig, TestGroupStrategy};
use cookiepicker::net::{SimNetwork, Url};
use cookiepicker::webworld::{Category, CookieRole, CookieSpec, EffectSize, SiteServer, SiteSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = SiteSpec::new("members.example", Category::Society, 77)
        .with_cookie(
            CookieSpec::useful("uid", CookieRole::SignUp, EffectSize::Large).scoped("/member"),
        )
        .with_cookie(CookieSpec::tracker("stats"));
    let mut net = SimNetwork::new(9);
    net.register("members.example", SiteServer::new(spec));

    let mut browser = Browser::new(Arc::new(net), CookiePolicy::AcceptAll, 5);
    // Probe one cookie at a time so the tracker gets its own (useless)
    // verdict — which the recovery button can then override.
    let mut picker = CookiePicker::new(
        CookiePickerConfig::default().with_strategy(TestGroupStrategy::PerCookie),
    );

    // Sign up (first visit to the member area sets the uid cookie) ...
    let member_home = Url::parse("http://members.example/member/home")?;
    let view = browser.visit_with(&member_home, &mut picker)?;
    println!(
        "first member-area visit shows sign-up wall: {}",
        view.html().contains("signup-error")
    );
    browser.think();

    // ... and keep browsing; CookiePicker probes the uid cookie by
    // re-fetching the member page without it — the wall comes back in the
    // hidden version, so uid is marked useful.
    for i in 0..8 {
        let url = if i % 2 == 0 {
            member_home.clone()
        } else {
            Url::parse(&format!("http://members.example/page/{i}"))?
        };
        browser.visit_with(&url, &mut picker)?;
        browser.think();
    }

    let uid_useful = browser.jar.iter().any(|c| c.name == "uid" && c.useful());
    println!("uid marked useful by CookiePicker: {uid_useful}");
    for r in picker.records_for("members.example") {
        println!(
            "  probe {} (disabled {:?}): NTreeSim={:.3} NTextSim={:.3} → {}",
            r.path,
            r.group,
            r.decision.tree_sim,
            r.decision.text_sim,
            if r.decision.cookies_caused_difference { "cookie-caused" } else { "noise" }
        );
    }

    // Backward error recovery demo: suppose the stats tracker had actually
    // mattered to the user. One click re-marks the cookies CookiePicker
    // most recently disabled on this site.
    let recovered = picker.recovery_click("members.example", &mut browser.jar);
    println!("\nrecovery button re-marked: {recovered:?}");
    println!("recovery log has {} event(s)", picker.recovery_log().events().len());
    Ok(())
}
