//! The paper's motivating scenario (§1): an online shop whose preference
//! cookie personalizes the page, alongside trackers the user would rather
//! not keep. Shows the full lifecycle: training, finalization, and browsing
//! on with the `UsefulOnly` policy — preferences intact, trackers gone.
//!
//! Run with: `cargo run --example shopping_preferences`

use std::sync::Arc;

use cookiepicker::browser::Browser;
use cookiepicker::cookies::CookiePolicy;
use cookiepicker::core::{CookiePicker, CookiePickerConfig, TestGroupStrategy};
use cookiepicker::net::{SimNetwork, Url};
use cookiepicker::webworld::{Category, CookieRole, CookieSpec, EffectSize, SiteServer, SiteSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = SiteSpec::new("shop.example", Category::Shopping, 404)
        .with_cookie(CookieSpec::useful("layout_pref", CookieRole::Preference, EffectSize::Large))
        .with_cookie(CookieSpec::tracker("campaign_id"))
        .with_cookie(CookieSpec::tracker("affiliate"))
        .with_cookie(CookieSpec::session("basket"));
    let mut net = SimNetwork::new(3);
    net.register("shop.example", SiteServer::new(spec));
    let net = Arc::new(net);

    let mut browser = Browser::new(Arc::clone(&net), CookiePolicy::AcceptAll, 11);
    // Per-cookie testing avoids piggyback marks on the trackers.
    let mut picker = CookiePicker::new(
        CookiePickerConfig::default().with_strategy(TestGroupStrategy::PerCookie),
    );

    println!("== training phase ==");
    for i in 0..10 {
        let url = Url::parse(&format!("http://shop.example/page/{}", i % 5))?;
        let view = browser.visit_with(&url, &mut picker)?;
        let personalized = view.html().contains("personalized");
        println!("  view {:2}: personalized layout: {personalized}", i + 1);
        browser.think();
    }

    let now = browser.now();
    println!("\n== verdicts ==");
    for c in browser.jar.cookies_for_site("shop.example", now) {
        if c.is_persistent() {
            println!(
                "  {:12} → {}",
                c.name,
                if c.useful() { "USEFUL (kept)" } else { "useless (will be removed)" }
            );
        }
    }

    let removed = picker.finalize_site("shop.example", &mut browser.jar);
    println!("\nremoved from jar: {removed:?}");

    // Browse on under the CookiePicker policy: only useful persistent
    // cookies are sent. The personalization must survive.
    browser.set_policy(CookiePolicy::UsefulOnly);
    println!("\n== browsing with UsefulOnly policy ==");
    let view = browser.visit(&Url::parse("http://shop.example/page/1")?)?;
    let sent = view.container_request.cookie_header().unwrap_or("(none)").to_string();
    println!("  cookie header sent: {sent}");
    println!("  page still personalized: {}", view.html().contains("personalized"));
    assert!(view.html().contains("personalized"), "preference must survive the cleanup");
    assert!(!sent.contains("campaign_id"), "tracker must not be sent");
    Ok(())
}
