//! Quickstart: train CookiePicker on one synthetic site and see which
//! cookies it keeps.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use cookiepicker::browser::Browser;
use cookiepicker::cookies::CookiePolicy;
use cookiepicker::core::{CookiePicker, CookiePickerConfig, TestGroupStrategy};
use cookiepicker::net::{SimNetwork, Url};
use cookiepicker::webworld::{Category, CookieRole, CookieSpec, EffectSize, SiteServer, SiteSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A website that sets three cookies: a long-lived tracker, an
    //    analytics beacon, and a theme preference that actually changes
    //    what the user sees.
    let spec = SiteSpec::new("quickstart.example", Category::Computers, 2026)
        .with_cookie(CookieSpec::tracker("visitor_id"))
        .with_cookie(CookieSpec::tracker("analytics"))
        .with_cookie(CookieSpec::useful("theme", CookieRole::Preference, EffectSize::Medium));

    let mut net = SimNetwork::new(1);
    net.register("quickstart.example", SiteServer::new(spec));

    // 2. A browser with CookiePicker installed. Per-cookie probing keeps
    //    the verdicts precise (the paper's default group test would mark
    //    the trackers along with the theme cookie).
    let mut browser = Browser::new(Arc::new(net), CookiePolicy::AcceptAll, 7);
    let mut picker = CookiePicker::new(
        CookiePickerConfig::default().with_strategy(TestGroupStrategy::PerCookie),
    );

    // 3. Browse a few pages; CookiePicker probes after each view.
    for i in 0..9 {
        let url = Url::parse(&format!("http://quickstart.example/page/{i}"))?;
        browser.visit_with(&url, &mut picker)?;
        let think = browser.think();
        println!("viewed /page/{i} (then thought for {think})");
    }

    // 4. Inspect the verdicts.
    println!("\ncookie verdicts:");
    let now = browser.now();
    for cookie in browser.jar.cookies_for_site("quickstart.example", now) {
        println!(
            "  {:12} persistent={} useful={}",
            cookie.name,
            cookie.is_persistent(),
            cookie.useful()
        );
    }

    // 5. Finalize: drop the useless persistent cookies from the jar.
    let removed = picker.finalize_site("quickstart.example", &mut browser.jar);
    println!("\nremoved useless persistent cookies: {removed:?}");
    println!("cookies remaining in jar: {}", browser.jar.len());

    for record in picker.records().iter().take(3) {
        println!(
            "probe {}: NTreeSim={:.3} NTextSim={:.3} → {}",
            record.path,
            record.decision.tree_sim,
            record.decision.text_sim,
            if record.decision.cookies_caused_difference { "useful" } else { "noise" }
        );
    }
    Ok(())
}
