//! Privacy audit: run CookiePicker across a whole population of sites (the
//! paper's Table-1 cohort) and report how much tracking surface it removes
//! — the end-user value proposition of §1.
//!
//! Run with: `cargo run --release --example privacy_audit`

use cookiepicker::webworld::table1_population;
use cp_bench::{run_site_training, TrainingOptions};

fn main() {
    let sites = table1_population(1);
    let mut total_persistent = 0usize;
    let mut removable = 0usize;
    let mut kept = 0usize;
    let mut tracking_kept = 0usize;

    println!("auditing {} sites ...\n", sites.len());
    for (i, spec) in sites.iter().enumerate() {
        let r = run_site_training(spec, &TrainingOptions::default());
        total_persistent += r.persistent;
        kept += r.marked_useful;
        removable += r.persistent - r.marked_useful;
        let truth = spec.useful_cookie_names();
        tracking_kept += r.marked_names.iter().filter(|m| !truth.contains(&m.as_str())).count();
        println!(
            "  S{:<3} {:22} {:2} persistent → keep {:2}, remove {:2}",
            i + 1,
            spec.domain,
            r.persistent,
            r.marked_useful,
            r.persistent - r.marked_useful
        );
    }

    println!("\n== audit summary ==");
    println!("persistent cookies observed:   {total_persistent}");
    println!(
        "removable (useless) cookies:   {removable} ({:.1}% of tracking surface eliminated)",
        100.0 * removable as f64 / total_persistent as f64
    );
    println!("cookies kept as useful:        {kept}");
    println!("  of which actually tracking:  {tracking_kept} (the conservative-threshold cost)");
}
