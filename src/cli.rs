//! The `cookiepicker` command-line interface.
//!
//! Subcommands:
//!
//! * `classify <regular.html> <hidden.html>` — run the paper's decision
//!   algorithm on two page versions read from disk, optionally explaining
//!   which structure/text drove the verdict;
//! * `simulate` — train CookiePicker over a seeded synthetic population and
//!   print a privacy audit;
//! * `jar <jar.json>` — inspect a persisted cookie jar;
//! * `serve` — run the cp-serve decision service over real TCP;
//! * `loadgen` — drive a running service with a seeded request mix and
//!   report throughput + latency percentiles as JSON;
//! * `crawl` — run the autonomous frontier scheduler over a world, either
//!   in-process or against a running service, until the corpus converges.
//!
//! Argument parsing is hand-rolled (no external dependency) and returns a
//! typed [`Command`], so it is unit-testable.

use std::fmt;

use cookiepicker_core::{decide, explain, CookiePickerConfig};
use cp_cookies::{CookieJar, SimTime};
use cp_html::parse_document;
use cp_runtime::json::ToJson;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Compare two HTML files with the decision algorithm.
    Classify {
        /// Path to the regular (cookies-enabled) version.
        regular: String,
        /// Path to the hidden (cookies-disabled) version.
        hidden: String,
        /// Thresholds/level overrides.
        config: CookiePickerConfig,
        /// Whether to print the structural/text diff report.
        explain: bool,
        /// Emit the decision as JSON (the same serialization the service's
        /// `/v1/classify` endpoint returns).
        json: bool,
    },
    /// Run a seeded population simulation and print the audit.
    Simulate {
        /// Population seed.
        seed: u64,
        /// Number of sites (capped at the Table-1 population size).
        sites: usize,
    },
    /// Inspect a persisted jar file.
    Jar {
        /// Path to the JSON jar.
        path: String,
        /// Restrict output to one site.
        site: Option<String>,
        /// Print the privacy audit instead of the cookie list.
        summary: bool,
    },
    /// Run the decision service.
    Serve {
        /// Port to bind on 127.0.0.1 (0 picks a free port).
        port: u16,
        /// Embedded-world population seed.
        seed: u64,
        /// Worker threads.
        workers: usize,
        /// Training-store shards.
        shards: usize,
        /// Bounded accept-queue capacity.
        queue: usize,
        /// Per-connection read/write timeout, milliseconds.
        timeout_ms: u64,
        /// Chaos mode: hidden-fetch fault rate in `[0, 1]` (0 disables).
        chaos_rate: f64,
        /// Durable mode: directory for per-shard WALs + snapshots.
        data_dir: Option<String>,
        /// WAL fsync policy (`always` / `batch` / `never`).
        fsync: cp_serve::FsyncPolicy,
        /// Events between automatic per-shard checkpoints.
        snapshot_every: u64,
        /// Injected storage-fault rate in `[0, 1]` (0 = real filesystem).
        storage_fault_rate: f64,
        /// Seed for the storage-fault stream.
        storage_fault_seed: u64,
        /// Embedded world to serve (`table1` or `uniform:N`).
        world: cp_serve::WorldKind,
        /// Replication listener port (cluster mode; 0 picks a free port).
        repl_port: Option<u16>,
        /// Replication ack policy (`none` / `quorum` / `all`).
        repl_ack: cp_serve::ReplAckPolicy,
        /// Follower replication addresses to lead at startup (repeatable).
        repl_followers: Vec<String>,
        /// Generation to lead at — followers that have witnessed a newer
        /// one fence the handshake and the server refuses to start.
        repl_generation: u64,
        /// Resync backlog ring capacity (records kept in memory for
        /// follower replay; reconnectors beyond the window bootstrap).
        repl_backlog: usize,
    },
    /// Run the cluster router in front of replicated cp-serve backends.
    Route {
        /// Port to bind on 127.0.0.1 (0 picks a free port).
        port: u16,
        /// Backend `HTTP_ADDR,REPL_ADDR` pairs; the first is led as the
        /// initial primary.
        backends: Vec<cp_serve::BackendAddr>,
        /// Worker threads.
        workers: usize,
        /// Heartbeat probe interval, milliseconds.
        heartbeat_ms: u64,
        /// Consecutive missed heartbeats before a backend is declared dead.
        miss_threshold: u32,
        /// Ack policy handed to a newly promoted primary.
        ack: cp_serve::ReplAckPolicy,
    },
    /// Run the deterministic TCP fault proxy between a client and a
    /// server (partition/stall/drop/throttle schedules for chaos gates).
    ChaosProxy {
        /// Address to listen on (`host:port`, port 0 picks a free port).
        listen: String,
        /// Address every accepted connection is forwarded to.
        target: String,
        /// Fault schedule spec, e.g. `open:500,cut:1000,open:0`.
        schedule: String,
        /// Seed for the throttle chunk-size stream.
        seed: u64,
    },
    /// One HTTP request against a running service (the crash harness's
    /// portable substitute for curl/nc).
    Get {
        /// Server host.
        host: String,
        /// Server port.
        port: u16,
        /// Send a bodyless POST instead of a GET.
        post: bool,
        /// Request target, e.g. `/v1/marks`.
        path: String,
    },
    /// Drive a running service with a seeded load mix.
    Loadgen {
        /// Server host.
        host: String,
        /// Server port.
        port: u16,
        /// Client threads.
        threads: usize,
        /// Keep-alive connections per thread (batched rounds when > 1).
        connections: usize,
        /// Total requests across all threads.
        requests: u64,
        /// Mix seed (must match the server's seed).
        seed: u64,
        /// Sample visit hosts Zipf-ranked from a `uniform:N` world instead
        /// of partitioning the Table-1 population.
        hosts: Option<u64>,
        /// Zipf exponent for `--hosts` sampling.
        zipf: f64,
        /// Also write the JSON report to this file.
        out: Option<String>,
        /// Write the observed `"host cookie"` mark lines to this file (one
        /// per line, sorted) — the chaos gate diffs two of these.
        marks_out: Option<String>,
        /// Transport retries per request (on reused connections).
        retries: u32,
        /// Base retry backoff, milliseconds (doubles per attempt).
        backoff_ms: u64,
    },
    /// Run the autonomous frontier crawler.
    Crawl {
        /// World to crawl (`table1` or `uniform:N`).
        world: cp_serve::WorldKind,
        /// Population seed (must match the server's in HTTP mode).
        seed: u64,
        /// Concurrent visits per scheduler tick.
        workers: usize,
        /// Stop after this many virtual ticks (unset = run to convergence).
        ticks: Option<u64>,
        /// Stop after this many wall-clock seconds.
        duration_s: Option<u64>,
        /// Usefulness-TTL in seconds: marks older than this decay and are
        /// re-verified (unset = marks never decay).
        ttl_s: Option<u64>,
        /// Probe retries before falling back to the deadline floor.
        retries: u32,
        /// Base backoff, milliseconds (doubles per attempt, jittered).
        backoff_ms: u64,
        /// Server host (HTTP mode).
        host: String,
        /// Server port; `0` crawls in-process against an embedded world.
        port: u16,
        /// Cap on hosts discovered by enumeration.
        max_hosts: Option<u64>,
        /// Extra hosts injected into the frontier (repeatable) — e.g.
        /// stale entries the resolver will reject.
        extra_hosts: Vec<String>,
        /// Also write the JSON report to this file.
        out: Option<String>,
        /// Write final `"host cookie"` mark lines to this file.
        marks_out: Option<String>,
    },
    /// Print usage.
    Help,
}

/// Error produced by [`parse_args`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Parses command-line arguments (excluding the program name).
///
/// # Errors
///
/// Returns [`CliError`] with a usage hint on unknown subcommands, missing
/// operands, or malformed flag values.
pub fn parse_args<I, S>(args: I) -> Result<Command, CliError>
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let args: Vec<String> = args.into_iter().map(Into::into).collect();
    let Some(sub) = args.first() else { return Ok(Command::Help) };
    match sub.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "classify" => {
            let mut config = CookiePickerConfig::default();
            let mut explain = false;
            let mut json = false;
            let mut files = Vec::new();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--explain" => explain = true,
                    "--json" => json = true,
                    "--thresh1" => config.thresh1 = flag_value(&mut it, "--thresh1")?,
                    "--thresh2" => config.thresh2 = flag_value(&mut it, "--thresh2")?,
                    "--level" => config.max_level = flag_value(&mut it, "--level")?,
                    other if other.starts_with("--") => {
                        return Err(err(format!("unknown flag {other}")))
                    }
                    file => files.push(file.to_string()),
                }
            }
            if files.len() != 2 {
                return Err(err("classify needs exactly two HTML files"));
            }
            Ok(Command::Classify {
                regular: files.remove(0),
                hidden: files.remove(0),
                config,
                explain,
                json,
            })
        }
        "simulate" => {
            let mut seed = 1u64;
            let mut sites = 30usize;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--seed" => seed = flag_value(&mut it, "--seed")?,
                    "--sites" => sites = flag_value(&mut it, "--sites")?,
                    other => return Err(err(format!("unknown flag {other}"))),
                }
            }
            Ok(Command::Simulate { seed, sites })
        }
        "jar" => {
            let mut path = None;
            let mut site = None;
            let mut summary = false;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--site" => site = Some(flag_value::<String>(&mut it, "--site")?),
                    "--summary" => summary = true,
                    other if other.starts_with("--") => {
                        return Err(err(format!("unknown flag {other}")))
                    }
                    file => path = Some(file.to_string()),
                }
            }
            let path = path.ok_or_else(|| err("jar needs a file path"))?;
            Ok(Command::Jar { path, site, summary })
        }
        "serve" => {
            let mut port = 7070u16;
            let mut seed = 7u64;
            let mut workers = 4usize;
            let mut shards = 16usize;
            let mut queue = 128usize;
            let mut timeout_ms = 5_000u64;
            let mut chaos_rate = 0.0f64;
            let mut data_dir = None;
            let mut fsync = cp_serve::FsyncPolicy::default();
            let mut snapshot_every = cp_serve::store::DEFAULT_SNAPSHOT_EVERY;
            let mut storage_fault_rate = 0.0f64;
            let mut storage_fault_seed = 0u64;
            let mut world = cp_serve::WorldKind::Table1;
            let mut repl_port = None;
            let mut repl_ack = cp_serve::ReplAckPolicy::default();
            let mut repl_followers = Vec::new();
            let mut repl_generation = 1u64;
            let mut repl_backlog = cp_serve::replication::DEFAULT_BACKLOG_CAP;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--port" => port = flag_value(&mut it, "--port")?,
                    "--seed" => seed = flag_value(&mut it, "--seed")?,
                    "--workers" => workers = flag_value(&mut it, "--workers")?,
                    "--shards" => shards = flag_value(&mut it, "--shards")?,
                    "--queue" => queue = flag_value(&mut it, "--queue")?,
                    "--timeout-ms" => timeout_ms = flag_value(&mut it, "--timeout-ms")?,
                    "--chaos-rate" => chaos_rate = flag_value(&mut it, "--chaos-rate")?,
                    "--data-dir" => data_dir = Some(flag_value::<String>(&mut it, "--data-dir")?),
                    "--fsync" => {
                        let v: String = flag_value(&mut it, "--fsync")?;
                        fsync = cp_serve::FsyncPolicy::parse(&v).ok_or_else(|| {
                            err(format!("invalid --fsync {v:?}; use always, batch, or never"))
                        })?;
                    }
                    "--snapshot-every" => snapshot_every = flag_value(&mut it, "--snapshot-every")?,
                    "--storage-fault-rate" => {
                        storage_fault_rate = flag_value(&mut it, "--storage-fault-rate")?
                    }
                    "--storage-fault-seed" => {
                        storage_fault_seed = flag_value(&mut it, "--storage-fault-seed")?
                    }
                    "--world" => {
                        let v: String = flag_value(&mut it, "--world")?;
                        world = cp_serve::WorldKind::parse(&v)
                            .map_err(|e| err(format!("invalid --world {v:?}: {e}")))?;
                    }
                    "--repl-port" => repl_port = Some(flag_value(&mut it, "--repl-port")?),
                    "--repl-ack" => {
                        let v: String = flag_value(&mut it, "--repl-ack")?;
                        repl_ack = cp_serve::ReplAckPolicy::parse(&v).ok_or_else(|| {
                            err(format!("invalid --repl-ack {v:?}; use none, quorum, or all"))
                        })?;
                    }
                    "--repl-follower" => {
                        repl_followers.push(flag_value::<String>(&mut it, "--repl-follower")?)
                    }
                    "--repl-generation" => {
                        repl_generation = flag_value(&mut it, "--repl-generation")?
                    }
                    "--repl-backlog" => repl_backlog = flag_value(&mut it, "--repl-backlog")?,
                    other => return Err(err(format!("unknown flag {other}"))),
                }
            }
            if repl_generation == 0 {
                return Err(err("--repl-generation must be at least 1"));
            }
            if repl_backlog == 0 {
                return Err(err("--repl-backlog must be at least 1 record"));
            }
            if !(0.0..=1.0).contains(&chaos_rate) {
                return Err(err("--chaos-rate must be in [0, 1]"));
            }
            if !(0.0..=1.0).contains(&storage_fault_rate) {
                return Err(err("--storage-fault-rate must be in [0, 1]"));
            }
            if data_dir.is_none() && storage_fault_rate > 0.0 {
                return Err(err("--storage-fault-rate needs --data-dir (nothing to fault)"));
            }
            Ok(Command::Serve {
                port,
                seed,
                workers,
                shards,
                queue,
                timeout_ms,
                chaos_rate,
                data_dir,
                fsync,
                snapshot_every,
                storage_fault_rate,
                storage_fault_seed,
                world,
                repl_port,
                repl_ack,
                repl_followers,
                repl_generation,
                repl_backlog,
            })
        }
        "chaos-proxy" => {
            let mut listen = "127.0.0.1:0".to_string();
            let mut target = None;
            let mut schedule = "open:0".to_string();
            let mut seed = 7u64;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--listen" => listen = flag_value(&mut it, "--listen")?,
                    "--target" => target = Some(flag_value::<String>(&mut it, "--target")?),
                    "--schedule" => schedule = flag_value(&mut it, "--schedule")?,
                    "--seed" => seed = flag_value(&mut it, "--seed")?,
                    other => return Err(err(format!("unknown flag {other}"))),
                }
            }
            let target = target.ok_or_else(|| err("chaos-proxy needs --target HOST:PORT"))?;
            // Reject malformed schedules before binding anything.
            cp_serve::parse_schedule(&schedule)
                .map_err(|e| err(format!("invalid --schedule: {e}")))?;
            Ok(Command::ChaosProxy { listen, target, schedule, seed })
        }
        "route" => {
            let mut port = 7069u16;
            let mut backends = Vec::new();
            let mut workers = 4usize;
            let defaults = cp_serve::RouterConfig::default();
            let mut heartbeat_ms = defaults.heartbeat.as_millis() as u64;
            let mut miss_threshold = defaults.miss_threshold;
            let mut ack = cp_serve::ReplAckPolicy::default();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--port" => port = flag_value(&mut it, "--port")?,
                    "--backend" => {
                        let v: String = flag_value(&mut it, "--backend")?;
                        backends.push(
                            cp_serve::BackendAddr::parse(&v)
                                .map_err(|e| err(format!("invalid --backend: {e}")))?,
                        );
                    }
                    "--workers" => workers = flag_value(&mut it, "--workers")?,
                    "--heartbeat-ms" => heartbeat_ms = flag_value(&mut it, "--heartbeat-ms")?,
                    "--miss-threshold" => miss_threshold = flag_value(&mut it, "--miss-threshold")?,
                    "--ack" => {
                        let v: String = flag_value(&mut it, "--ack")?;
                        ack = cp_serve::ReplAckPolicy::parse(&v).ok_or_else(|| {
                            err(format!("invalid --ack {v:?}; use none, quorum, or all"))
                        })?;
                    }
                    other => return Err(err(format!("unknown flag {other}"))),
                }
            }
            if backends.is_empty() {
                return Err(err("route needs at least one --backend HTTP_ADDR,REPL_ADDR"));
            }
            if heartbeat_ms == 0 {
                return Err(err("--heartbeat-ms must be at least 1"));
            }
            if miss_threshold == 0 {
                return Err(err("--miss-threshold must be at least 1"));
            }
            Ok(Command::Route { port, backends, workers, heartbeat_ms, miss_threshold, ack })
        }
        "get" => {
            let mut host = "127.0.0.1".to_string();
            let mut port = 0u16;
            let mut post = false;
            let mut path = None;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--host" => host = flag_value(&mut it, "--host")?,
                    "--port" => port = flag_value(&mut it, "--port")?,
                    "--post" => post = true,
                    other if other.starts_with("--") => {
                        return Err(err(format!("unknown flag {other}")))
                    }
                    target => path = Some(target.to_string()),
                }
            }
            if port == 0 {
                return Err(err("get needs --port pointing at a running server"));
            }
            let path = path.ok_or_else(|| err("get needs a request path, e.g. /v1/marks"))?;
            Ok(Command::Get { host, port, post, path })
        }
        "loadgen" => {
            let mut host = "127.0.0.1".to_string();
            let mut port = 0u16;
            let mut threads = 4usize;
            let mut connections = 1usize;
            let mut requests = 10_000u64;
            let mut seed = 7u64;
            let mut hosts = None;
            let mut zipf = 1.0f64;
            let mut out = None;
            let mut marks_out = None;
            let mut retries = 1u32;
            let mut backoff_ms = 5u64;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--host" => host = flag_value(&mut it, "--host")?,
                    "--port" => port = flag_value(&mut it, "--port")?,
                    "--threads" => threads = flag_value(&mut it, "--threads")?,
                    "--connections" => connections = flag_value(&mut it, "--connections")?,
                    "--requests" => requests = flag_value(&mut it, "--requests")?,
                    "--seed" => seed = flag_value(&mut it, "--seed")?,
                    "--hosts" => hosts = Some(flag_value(&mut it, "--hosts")?),
                    "--zipf" => zipf = flag_value(&mut it, "--zipf")?,
                    "--out" => out = Some(flag_value::<String>(&mut it, "--out")?),
                    "--marks-out" => {
                        marks_out = Some(flag_value::<String>(&mut it, "--marks-out")?)
                    }
                    "--retries" => retries = flag_value(&mut it, "--retries")?,
                    "--backoff-ms" => backoff_ms = flag_value(&mut it, "--backoff-ms")?,
                    other => return Err(err(format!("unknown flag {other}"))),
                }
            }
            if port == 0 {
                return Err(err("loadgen needs --port pointing at a running server"));
            }
            if hosts == Some(0) {
                return Err(err("--hosts must be at least 1"));
            }
            if connections == 0 {
                return Err(err("--connections must be at least 1"));
            }
            if !zipf.is_finite() || zipf < 0.0 {
                return Err(err("--zipf must be a finite exponent >= 0"));
            }
            Ok(Command::Loadgen {
                host,
                port,
                threads,
                connections,
                requests,
                seed,
                hosts,
                zipf,
                out,
                marks_out,
                retries,
                backoff_ms,
            })
        }
        "crawl" => {
            let mut world = cp_serve::WorldKind::Table1;
            let mut seed = 7u64;
            let mut workers = 4usize;
            let mut ticks = None;
            let mut duration_s = None;
            let mut ttl_s = None;
            let retry_defaults = cookiepicker_core::RetryPolicy::default();
            let mut retries = retry_defaults.max_retries;
            let mut backoff_ms = retry_defaults.backoff.as_millis();
            let mut host = "127.0.0.1".to_string();
            let mut port = 0u16;
            let mut max_hosts = None;
            let mut extra_hosts = Vec::new();
            let mut out = None;
            let mut marks_out = None;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--world" => {
                        let v: String = flag_value(&mut it, "--world")?;
                        world = cp_serve::WorldKind::parse(&v)
                            .map_err(|e| err(format!("invalid --world {v:?}: {e}")))?;
                    }
                    "--seed" => seed = flag_value(&mut it, "--seed")?,
                    "--workers" => workers = flag_value(&mut it, "--workers")?,
                    "--ticks" => ticks = Some(flag_value(&mut it, "--ticks")?),
                    "--duration" => duration_s = Some(flag_value(&mut it, "--duration")?),
                    "--ttl" => ttl_s = Some(flag_value(&mut it, "--ttl")?),
                    "--retries" => retries = flag_value(&mut it, "--retries")?,
                    "--backoff-ms" => backoff_ms = flag_value(&mut it, "--backoff-ms")?,
                    "--host" => host = flag_value(&mut it, "--host")?,
                    "--port" => port = flag_value(&mut it, "--port")?,
                    "--max-hosts" => max_hosts = Some(flag_value(&mut it, "--max-hosts")?),
                    "--extra-host" => {
                        extra_hosts.push(flag_value::<String>(&mut it, "--extra-host")?)
                    }
                    "--out" => out = Some(flag_value::<String>(&mut it, "--out")?),
                    "--marks-out" => {
                        marks_out = Some(flag_value::<String>(&mut it, "--marks-out")?)
                    }
                    other => return Err(err(format!("unknown flag {other}"))),
                }
            }
            if workers == 0 {
                return Err(err("--workers must be at least 1"));
            }
            if ttl_s == Some(0) {
                return Err(err("--ttl must be at least 1 second"));
            }
            Ok(Command::Crawl {
                world,
                seed,
                workers,
                ticks,
                duration_s,
                ttl_s,
                retries,
                backoff_ms,
                host,
                port,
                max_hosts,
                extra_hosts,
                out,
                marks_out,
            })
        }
        other => Err(err(format!("unknown subcommand {other:?}; try `cookiepicker help`"))),
    }
}

fn flag_value<T: std::str::FromStr>(
    it: &mut std::slice::Iter<'_, String>,
    flag: &str,
) -> Result<T, CliError> {
    let v = it.next().ok_or_else(|| err(format!("{flag} needs a value")))?;
    v.parse().map_err(|_| err(format!("invalid value {v:?} for {flag}")))
}

/// Usage text.
pub const USAGE: &str = "\
cookiepicker — automatic cookie usage setting (DSN 2007 reproduction)

USAGE:
    cookiepicker classify <regular.html> <hidden.html> [--thresh1 F] [--thresh2 F] [--level N] [--explain] [--json]
    cookiepicker simulate [--seed N] [--sites N]
    cookiepicker jar <jar.json> [--site HOST] [--summary]
    cookiepicker serve [--port N] [--seed N] [--workers N] [--shards N] [--queue N] [--timeout-ms N] [--chaos-rate F]
                       [--world table1|uniform:N] [--data-dir DIR] [--fsync always|batch|never] [--snapshot-every N]
                       [--storage-fault-rate F] [--storage-fault-seed N]
                       [--repl-port N] [--repl-ack none|quorum|all] [--repl-follower ADDR]... [--repl-generation N]
                       [--repl-backlog N]
    cookiepicker route --backend HTTP_ADDR,REPL_ADDR [--backend ...]... [--port N] [--workers N]
                       [--heartbeat-ms N] [--miss-threshold N] [--ack none|quorum|all]
    cookiepicker chaos-proxy --target HOST:PORT [--listen HOST:PORT] [--schedule PHASE:MS,...] [--seed N]
    cookiepicker loadgen --port N [--host H] [--threads N] [--connections N] [--requests N] [--seed N] [--hosts N] [--zipf S]
                         [--retries N] [--backoff-ms N] [--out FILE] [--marks-out FILE]
    cookiepicker crawl [--world table1|uniform:N] [--seed N] [--workers N] [--ticks N] [--duration S] [--ttl S]
                       [--retries N] [--backoff-ms N] [--port N] [--host H] [--max-hosts N] [--extra-host H]...
                       [--out FILE] [--marks-out FILE]
    cookiepicker get --port N [--host H] [--post] PATH
    cookiepicker help
";

/// Executes a parsed command, writing human output to `out`.
///
/// # Errors
///
/// Returns [`CliError`] for I/O problems or malformed inputs.
pub fn run(command: Command, out: &mut impl std::io::Write) -> Result<(), CliError> {
    match command {
        Command::Help => {
            write!(out, "{USAGE}").map_err(|e| err(e.to_string()))?;
        }
        Command::Classify { regular, hidden, config, explain: want_explain, json } => {
            let read = |p: &str| {
                std::fs::read_to_string(p).map_err(|e| err(format!("cannot read {p}: {e}")))
            };
            let reg_doc = parse_document(&read(&regular)?);
            let hid_doc = parse_document(&read(&hidden)?);
            let d = decide(&reg_doc, &hid_doc, &config);
            if json {
                // Exactly the serialization `/v1/classify` returns.
                writeln!(out, "{}", d.to_json().to_compact()).map_err(|e| err(e.to_string()))?;
                return Ok(());
            }
            writeln!(out, "NTreeSim(A,B,{}) = {:.4}", config.max_level, d.tree_sim)
                .map_err(|e| err(e.to_string()))?;
            writeln!(out, "NTextSim(S1,S2) = {:.4}", d.text_sim).map_err(|e| err(e.to_string()))?;
            writeln!(
                out,
                "verdict: {}",
                if d.cookies_caused_difference {
                    "difference caused by cookies (USEFUL)"
                } else {
                    "difference is page-dynamics noise (useless)"
                }
            )
            .map_err(|e| err(e.to_string()))?;
            if want_explain {
                let report = explain(&reg_doc, &hid_doc, &config);
                writeln!(out, "\nunmatched structure in regular version:")
                    .map_err(|e| err(e.to_string()))?;
                for p in &report.unmatched_regular {
                    writeln!(out, "  - {p}").map_err(|e| err(e.to_string()))?;
                }
                writeln!(out, "unmatched structure in hidden version:")
                    .map_err(|e| err(e.to_string()))?;
                for p in &report.unmatched_hidden {
                    writeln!(out, "  - {p}").map_err(|e| err(e.to_string()))?;
                }
                writeln!(out, "text contexts only in regular: {:?}", report.contexts_only_regular)
                    .map_err(|e| err(e.to_string()))?;
                writeln!(out, "text contexts only in hidden: {:?}", report.contexts_only_hidden)
                    .map_err(|e| err(e.to_string()))?;
            }
        }
        Command::Simulate { seed, sites } => {
            let population: Vec<_> =
                cp_webworld::table1_population(seed).into_iter().take(sites).collect();
            writeln!(
                out,
                "training CookiePicker on {} synthetic sites (seed {seed})...",
                population.len()
            )
            .map_err(|e| err(e.to_string()))?;
            let mut total = 0usize;
            let mut kept = 0usize;
            for spec in &population {
                let r = crate::simulate_site(spec, seed);
                writeln!(
                    out,
                    "  {:24} {:2} persistent -> keep {:2}, remove {:2}",
                    spec.domain,
                    r.persistent,
                    r.marked_useful,
                    r.persistent - r.marked_useful
                )
                .map_err(|e| err(e.to_string()))?;
                total += r.persistent;
                kept += r.marked_useful;
            }
            writeln!(
                out,
                "audit: {total} persistent cookies, {kept} kept, {} removable",
                total - kept
            )
            .map_err(|e| err(e.to_string()))?;
        }
        Command::Jar { path, site, summary } => {
            let json = std::fs::read_to_string(&path)
                .map_err(|e| err(format!("cannot read {path}: {e}")))?;
            let jar = CookieJar::from_json(&json).map_err(|e| err(format!("invalid jar: {e}")))?;
            let now = SimTime::EPOCH;
            if summary {
                let audit = cp_cookies::audit_jar(&jar, now);
                writeln!(
                    out,
                    "cookies: {} total, {} session, {} persistent",
                    audit.total, audit.session, audit.persistent
                )
                .map_err(|e| err(e.to_string()))?;
                writeln!(
                    out,
                    "useful: {}, removable tracking surface: {}",
                    audit.useful, audit.removable
                )
                .map_err(|e| err(e.to_string()))?;
                writeln!(
                    out,
                    "living >= 1 year: {} ({:.1}%)",
                    audit.year_plus,
                    100.0 * audit.year_plus_share()
                )
                .map_err(|e| err(e.to_string()))?;
                for (label, count) in &audit.lifetime_histogram {
                    writeln!(out, "  {label:12} {count}").map_err(|e| err(e.to_string()))?;
                }
                return Ok(());
            }
            for c in jar.iter() {
                if let Some(s) = &site {
                    if !c.domain_matches(s) {
                        continue;
                    }
                }
                writeln!(
                    out,
                    "{:30} {:12} persistent={} useful={} expired={}",
                    c.domain,
                    c.name,
                    c.is_persistent(),
                    c.useful(),
                    c.is_expired(now)
                )
                .map_err(|e| err(e.to_string()))?;
            }
        }
        Command::Serve {
            port,
            seed,
            workers,
            shards,
            queue,
            timeout_ms,
            chaos_rate,
            data_dir,
            fsync,
            snapshot_every,
            storage_fault_rate,
            storage_fault_seed,
            world,
            repl_port,
            repl_ack,
            repl_followers,
            repl_generation,
            repl_backlog,
        } => {
            let timeout = std::time::Duration::from_millis(timeout_ms);
            let durable = data_dir.is_some();
            let config = cp_serve::ServeConfig {
                port,
                seed,
                workers,
                shards,
                queue_capacity: queue,
                read_timeout: timeout,
                write_timeout: timeout,
                chaos_fault_rate: chaos_rate,
                data_dir: data_dir.map(std::path::PathBuf::from),
                fsync,
                snapshot_every,
                storage_fault_rate,
                storage_fault_seed,
                world,
                repl_port,
                repl_ack,
                repl_followers,
                repl_generation,
                repl_backlog,
                ..cp_serve::ServeConfig::default()
            };
            let mut server =
                cp_serve::start(config).map_err(|e| err(format!("cannot start: {e}")))?;
            writeln!(
                out,
                "cp-serve listening on http://{} (seed {seed}, world {world}, {workers} workers, {shards} shards)",
                server.addr()
            )
            .map_err(|e| err(e.to_string()))?;
            if let Some(addr) = server.repl_addr() {
                writeln!(out, "cp-serve replication on {addr} (ack {})", repl_ack.label())
                    .map_err(|e| err(e.to_string()))?;
            }
            if durable {
                let r = server.recovery();
                writeln!(
                    out,
                    "cp-serve durable (fsync {}): recovered {} snapshots, replayed {} records, \
                     discarded {} torn bytes in {:.1} ms",
                    fsync.label(),
                    r.snapshots_loaded,
                    r.records_replayed,
                    r.torn_tail_bytes,
                    r.recovery_micros as f64 / 1_000.0
                )
                .map_err(|e| err(e.to_string()))?;
            }
            // Flush so wrappers (bench scripts) can scrape the port before
            // the server exits.
            out.flush().map_err(|e| err(e.to_string()))?;
            server.wait();
            writeln!(out, "cp-serve: drained and stopped").map_err(|e| err(e.to_string()))?;
        }
        Command::Route { port, backends, workers, heartbeat_ms, miss_threshold, ack } => {
            let n = backends.len();
            let config = cp_serve::RouterConfig {
                port,
                backends,
                workers,
                heartbeat: std::time::Duration::from_millis(heartbeat_ms),
                miss_threshold,
                ack,
                ..cp_serve::RouterConfig::default()
            };
            let mut router =
                cp_serve::start_router(config).map_err(|e| err(format!("cannot start: {e}")))?;
            writeln!(
                out,
                "cp-route listening on http://{} ({n} backends, ack {}, heartbeat {heartbeat_ms} ms)",
                router.addr(),
                ack.label()
            )
            .map_err(|e| err(e.to_string()))?;
            out.flush().map_err(|e| err(e.to_string()))?;
            router.wait();
            writeln!(out, "cp-route: drained and stopped").map_err(|e| err(e.to_string()))?;
        }
        Command::ChaosProxy { listen, target, schedule, seed } => {
            let parsed = cp_serve::parse_schedule(&schedule)
                .map_err(|e| err(format!("invalid --schedule: {e}")))?;
            let proxy = cp_serve::ChaosProxy::start(&listen, &target, seed)
                .map_err(|e| err(format!("cannot start: {e}")))?;
            writeln!(out, "cp-chaos-proxy listening on {} -> {target} (seed {seed})", proxy.addr())
                .map_err(|e| err(e.to_string()))?;
            // Flush so wrappers (cluster.sh) can scrape the port before the
            // schedule runs to completion.
            out.flush().map_err(|e| err(e.to_string()))?;
            proxy.run_schedule(&parsed);
            writeln!(out, "cp-chaos-proxy: schedule complete").map_err(|e| err(e.to_string()))?;
        }
        Command::Get { host, port, post, path } => {
            let mut client = cp_serve::loadgen::Client::new(&host, port);
            let method = if post { "POST" } else { "GET" };
            let response = client
                .request(method, &path, b"")
                .map_err(|e| err(format!("{method} {path} failed: {e}")))?;
            if response.status >= 400 {
                return Err(err(format!("{method} {path} -> {}", response.status)));
            }
            write!(out, "{}", response.body_string()).map_err(|e| err(e.to_string()))?;
        }
        Command::Loadgen {
            host,
            port,
            threads,
            connections,
            requests,
            seed,
            hosts,
            zipf,
            out: out_path,
            marks_out,
            retries,
            backoff_ms,
        } => {
            let config = cp_serve::LoadgenConfig {
                host,
                port,
                threads,
                connections,
                requests,
                seed,
                hosts,
                zipf,
                retries,
                backoff: std::time::Duration::from_millis(backoff_ms),
            };
            let report =
                cp_serve::loadgen::run(&config).map_err(|e| err(format!("loadgen: {e}")))?;
            let json = report.to_json().to_pretty();
            writeln!(out, "{json}").map_err(|e| err(e.to_string()))?;
            if let Some(path) = out_path {
                std::fs::write(&path, format!("{json}\n"))
                    .map_err(|e| err(format!("cannot write {path}: {e}")))?;
            }
            if let Some(path) = marks_out {
                let mut lines = report.marks.join("\n");
                if !lines.is_empty() {
                    lines.push('\n');
                }
                std::fs::write(&path, lines)
                    .map_err(|e| err(format!("cannot write {path}: {e}")))?;
            }
        }
        Command::Crawl {
            world,
            seed,
            workers,
            ticks,
            duration_s,
            ttl_s,
            retries,
            backoff_ms,
            host,
            port,
            max_hosts,
            extra_hosts,
            out: out_path,
            marks_out,
        } => {
            use cp_crawl::TICK_MILLIS;
            let retry = cookiepicker_core::RetryPolicy {
                max_retries: retries,
                backoff: cp_cookies::SimDuration::from_millis(backoff_ms),
                ..cookiepicker_core::RetryPolicy::default()
            };
            let config = cp_crawl::CrawlConfig {
                seed,
                world,
                workers,
                ticks,
                duration: duration_s.map(std::time::Duration::from_secs),
                ttl_ticks: ttl_s.map(|s| (s * 1_000 / TICK_MILLIS).max(1)),
                retry,
                max_hosts,
                extra_hosts,
                ..cp_crawl::CrawlConfig::default()
            };
            let metrics = std::sync::Arc::new(cp_serve::metrics::ServiceMetrics::new());
            let report = if port == 0 {
                // In-process: embed the world and store right here — the
                // crawl needs no server and no load generator.
                let picker = CookiePickerConfig::default();
                let store = cp_serve::ShardedStore::new(16, picker.stability_window);
                let driver = cp_crawl::InProcessDriver::new(
                    cp_serve::EmbeddedWorld::with_world(seed, world, cp_serve::DEFAULT_SITE_CACHE),
                    store,
                    picker,
                    cp_serve::AnalysisCache::new(512),
                    std::sync::Arc::clone(&metrics),
                );
                cp_crawl::crawl(&config, &driver, &metrics)
            } else {
                let driver = cp_crawl::HttpDriver::new(&host, port, &config.retry);
                cp_crawl::crawl(&config, &driver, &metrics)
            };
            let json = report.to_json().to_pretty();
            writeln!(out, "{json}").map_err(|e| err(e.to_string()))?;
            if let Some(path) = out_path {
                std::fs::write(&path, format!("{json}\n"))
                    .map_err(|e| err(format!("cannot write {path}: {e}")))?;
            }
            if let Some(path) = marks_out {
                let mut lines = report.marks.join("\n");
                if !lines.is_empty() {
                    lines.push('\n');
                }
                std::fs::write(&path, lines)
                    .map_err(|e| err(format!("cannot write {path}: {e}")))?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_help_variants() {
        assert_eq!(parse_args(Vec::<String>::new()).unwrap(), Command::Help);
        assert_eq!(parse_args(["help"]).unwrap(), Command::Help);
        assert_eq!(parse_args(["--help"]).unwrap(), Command::Help);
    }

    #[test]
    fn parse_classify() {
        let cmd = parse_args([
            "classify",
            "a.html",
            "b.html",
            "--explain",
            "--thresh1",
            "0.7",
            "--level",
            "3",
        ])
        .unwrap();
        let Command::Classify { regular, hidden, config, explain, json } = cmd else { panic!() };
        assert_eq!(regular, "a.html");
        assert_eq!(hidden, "b.html");
        assert!(explain);
        assert!(!json);
        assert_eq!(config.thresh1, 0.7);
        assert_eq!(config.max_level, 3);
        assert_eq!(config.thresh2, 0.85, "unset flags keep defaults");
    }

    #[test]
    fn parse_classify_errors() {
        assert!(parse_args(["classify", "only-one.html"]).is_err());
        assert!(parse_args(["classify", "a", "b", "--thresh1"]).is_err());
        assert!(parse_args(["classify", "a", "b", "--thresh1", "NaNope"]).is_err());
        assert!(parse_args(["classify", "a", "b", "--bogus"]).is_err());
    }

    #[test]
    fn parse_simulate_and_jar() {
        assert_eq!(
            parse_args(["simulate", "--seed", "9", "--sites", "5"]).unwrap(),
            Command::Simulate { seed: 9, sites: 5 }
        );
        assert_eq!(
            parse_args(["jar", "cookies.json", "--site", "a.example"]).unwrap(),
            Command::Jar {
                path: "cookies.json".into(),
                site: Some("a.example".into()),
                summary: false
            }
        );
        assert!(matches!(
            parse_args(["jar", "cookies.json", "--summary"]).unwrap(),
            Command::Jar { summary: true, .. }
        ));
        assert!(parse_args(["jar"]).is_err());
        assert!(parse_args(["frobnicate"]).is_err());
    }

    #[test]
    fn parse_serve_and_loadgen() {
        assert_eq!(
            parse_args(["serve", "--port", "0", "--seed", "7", "--workers", "2"]).unwrap(),
            Command::Serve {
                port: 0,
                seed: 7,
                workers: 2,
                shards: 16,
                queue: 128,
                timeout_ms: 5_000,
                chaos_rate: 0.0,
                data_dir: None,
                fsync: cp_serve::FsyncPolicy::Batch,
                snapshot_every: cp_serve::store::DEFAULT_SNAPSHOT_EVERY,
                storage_fault_rate: 0.0,
                storage_fault_seed: 0,
                world: cp_serve::WorldKind::Table1,
                repl_port: None,
                repl_ack: cp_serve::ReplAckPolicy::Quorum,
                repl_followers: vec![],
                repl_generation: 1,
                repl_backlog: cp_serve::replication::DEFAULT_BACKLOG_CAP,
            }
        );
        assert!(matches!(
            parse_args(["serve", "--chaos-rate", "0.1"]).unwrap(),
            Command::Serve { port: 7070, chaos_rate, .. } if chaos_rate == 0.1
        ));
        assert_eq!(
            parse_args(["loadgen", "--port", "7070", "--requests", "500", "--out", "r.json"])
                .unwrap(),
            Command::Loadgen {
                host: "127.0.0.1".into(),
                port: 7070,
                threads: 4,
                connections: 1,
                requests: 500,
                seed: 7,
                hosts: None,
                zipf: 1.0,
                out: Some("r.json".into()),
                marks_out: None,
                retries: 1,
                backoff_ms: 5,
            }
        );
        assert!(matches!(
            parse_args(["loadgen", "--port", "7070", "--marks-out", "marks.txt"]).unwrap(),
            Command::Loadgen { marks_out: Some(ref p), .. } if p == "marks.txt"
        ));
        assert!(matches!(
            parse_args(["loadgen", "--port", "7070", "--retries", "3", "--backoff-ms", "20"])
                .unwrap(),
            Command::Loadgen { retries: 3, backoff_ms: 20, .. }
        ));
        assert!(matches!(
            parse_args(["loadgen", "--port", "7070", "--connections", "8"]).unwrap(),
            Command::Loadgen { connections: 8, .. }
        ));
        assert!(
            parse_args(["loadgen", "--port", "7070", "--connections", "0"]).is_err(),
            "connections must be at least 1"
        );
        assert!(parse_args(["serve", "--bogus"]).is_err());
        assert!(parse_args(["serve", "--chaos-rate", "1.5"]).is_err(), "rate must be in [0, 1]");
        assert!(parse_args(["loadgen", "--threads", "2"]).is_err(), "loadgen requires --port");
    }

    #[test]
    fn parse_world_and_zipf_flags() {
        assert!(matches!(
            parse_args(["serve", "--world", "uniform:1000000"]).unwrap(),
            Command::Serve { world: cp_serve::WorldKind::Uniform(1_000_000), .. }
        ));
        assert!(matches!(
            parse_args(["serve", "--world", "table1"]).unwrap(),
            Command::Serve { world: cp_serve::WorldKind::Table1, .. }
        ));
        assert!(parse_args(["serve", "--world", "uniform:0"]).is_err(), "empty world");
        assert!(parse_args(["serve", "--world", "galaxy"]).is_err(), "unknown kind");
        assert!(matches!(
            parse_args(["loadgen", "--port", "1", "--hosts", "1000000", "--zipf", "1.1"]).unwrap(),
            Command::Loadgen { hosts: Some(1_000_000), zipf, .. } if zipf == 1.1
        ));
        assert!(parse_args(["loadgen", "--port", "1", "--hosts", "0"]).is_err());
        assert!(parse_args(["loadgen", "--port", "1", "--zipf", "-1"]).is_err());
        assert!(parse_args(["loadgen", "--port", "1", "--zipf", "inf"]).is_err());
    }

    #[test]
    fn parse_serve_durability_flags() {
        let cmd = parse_args([
            "serve",
            "--data-dir",
            "/tmp/cp-data",
            "--fsync",
            "always",
            "--snapshot-every",
            "64",
            "--storage-fault-rate",
            "0.05",
            "--storage-fault-seed",
            "42",
        ])
        .unwrap();
        let Command::Serve {
            data_dir,
            fsync,
            snapshot_every,
            storage_fault_rate,
            storage_fault_seed,
            ..
        } = cmd
        else {
            panic!("expected serve")
        };
        assert_eq!(data_dir.as_deref(), Some("/tmp/cp-data"));
        assert_eq!(fsync, cp_serve::FsyncPolicy::Always);
        assert_eq!(snapshot_every, 64);
        assert_eq!(storage_fault_rate, 0.05);
        assert_eq!(storage_fault_seed, 42);
        assert!(parse_args(["serve", "--fsync", "sometimes"]).is_err(), "unknown policy");
        assert!(
            parse_args(["serve", "--data-dir", "/tmp/d", "--storage-fault-rate", "1.5"]).is_err(),
            "rate must be in [0, 1]"
        );
        assert!(
            parse_args(["serve", "--storage-fault-rate", "0.1"]).is_err(),
            "storage faults need a data dir"
        );
    }

    #[test]
    fn parse_get() {
        assert_eq!(
            parse_args(["get", "--port", "7070", "/v1/marks"]).unwrap(),
            Command::Get {
                host: "127.0.0.1".into(),
                port: 7070,
                post: false,
                path: "/v1/marks".into()
            }
        );
        assert!(matches!(
            parse_args(["get", "--port", "7070", "--post", "/v1/shutdown"]).unwrap(),
            Command::Get { post: true, .. }
        ));
        assert!(parse_args(["get", "/v1/marks"]).is_err(), "get requires --port");
        assert!(parse_args(["get", "--port", "7070"]).is_err(), "get requires a path");
    }

    #[test]
    fn parse_crawl() {
        let cmd = parse_args([
            "crawl",
            "--world",
            "uniform:1000",
            "--seed",
            "9",
            "--workers",
            "8",
            "--ttl",
            "30",
            "--retries",
            "5",
            "--backoff-ms",
            "100",
            "--max-hosts",
            "500",
            "--extra-host",
            "stale1.example",
            "--extra-host",
            "stale2.example",
            "--out",
            "crawl.json",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Crawl {
                world: cp_serve::WorldKind::Uniform(1_000),
                seed: 9,
                workers: 8,
                ticks: None,
                duration_s: None,
                ttl_s: Some(30),
                retries: 5,
                backoff_ms: 100,
                host: "127.0.0.1".into(),
                port: 0,
                max_hosts: Some(500),
                extra_hosts: vec!["stale1.example".into(), "stale2.example".into()],
                out: Some("crawl.json".into()),
                marks_out: None,
            }
        );
        // Defaults: in-process, the core retry policy's budget and backoff.
        let defaults = cookiepicker_core::RetryPolicy::default();
        assert!(matches!(
            parse_args(["crawl"]).unwrap(),
            Command::Crawl { port: 0, world: cp_serve::WorldKind::Table1, retries, backoff_ms, .. }
                if retries == defaults.max_retries && backoff_ms == defaults.backoff.as_millis()
        ));
        assert!(parse_args(["crawl", "--workers", "0"]).is_err(), "needs a worker");
        assert!(parse_args(["crawl", "--ttl", "0"]).is_err(), "zero TTL would thrash");
        assert!(parse_args(["crawl", "--world", "galaxy"]).is_err());
        assert!(parse_args(["crawl", "--bogus"]).is_err());
    }

    #[test]
    fn parse_serve_replication_flags() {
        let cmd = parse_args([
            "serve",
            "--repl-port",
            "7171",
            "--repl-ack",
            "all",
            "--repl-follower",
            "127.0.0.1:7271",
            "--repl-follower",
            "127.0.0.1:7272",
            "--repl-generation",
            "3",
        ])
        .unwrap();
        let Command::Serve { repl_port, repl_ack, repl_followers, repl_generation, .. } = cmd
        else {
            panic!("expected serve")
        };
        assert_eq!(repl_port, Some(7171));
        assert_eq!(repl_ack, cp_serve::ReplAckPolicy::All);
        assert_eq!(repl_followers, vec!["127.0.0.1:7271".to_string(), "127.0.0.1:7272".into()]);
        assert_eq!(repl_generation, 3);
        assert!(parse_args(["serve", "--repl-ack", "most"]).is_err(), "unknown policy");
        assert!(parse_args(["serve", "--repl-generation", "0"]).is_err(), "generations start at 1");
        assert!(matches!(
            parse_args(["serve", "--repl-backlog", "64"]).unwrap(),
            Command::Serve { repl_backlog: 64, .. }
        ));
        assert!(
            parse_args(["serve", "--repl-backlog", "0"]).is_err(),
            "empty ring replays nothing"
        );
    }

    #[test]
    fn parse_chaos_proxy() {
        assert_eq!(
            parse_args([
                "chaos-proxy",
                "--listen",
                "127.0.0.1:7555",
                "--target",
                "127.0.0.1:7170",
                "--schedule",
                "open:500,cut:1000,open:0",
                "--seed",
                "9",
            ])
            .unwrap(),
            Command::ChaosProxy {
                listen: "127.0.0.1:7555".into(),
                target: "127.0.0.1:7170".into(),
                schedule: "open:500,cut:1000,open:0".into(),
                seed: 9,
            }
        );
        // Defaults: any free port, hold open forever.
        assert!(matches!(
            parse_args(["chaos-proxy", "--target", "127.0.0.1:1"]).unwrap(),
            Command::ChaosProxy { ref listen, ref schedule, seed: 7, .. }
                if listen == "127.0.0.1:0" && schedule == "open:0"
        ));
        assert!(parse_args(["chaos-proxy"]).is_err(), "needs a target");
        assert!(
            parse_args(["chaos-proxy", "--target", "127.0.0.1:1", "--schedule", "warp:10"])
                .is_err(),
            "unknown phase rejected at parse time"
        );
        assert!(parse_args(["chaos-proxy", "--target", "127.0.0.1:1", "--bogus"]).is_err());
    }

    #[test]
    fn parse_route() {
        let cmd = parse_args([
            "route",
            "--port",
            "7069",
            "--backend",
            "127.0.0.1:7070,127.0.0.1:7170",
            "--backend",
            "127.0.0.1:7071,127.0.0.1:7171",
            "--workers",
            "2",
            "--heartbeat-ms",
            "100",
            "--miss-threshold",
            "5",
            "--ack",
            "none",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Route {
                port: 7069,
                backends: vec![
                    cp_serve::BackendAddr::parse("127.0.0.1:7070,127.0.0.1:7170").unwrap(),
                    cp_serve::BackendAddr::parse("127.0.0.1:7071,127.0.0.1:7171").unwrap(),
                ],
                workers: 2,
                heartbeat_ms: 100,
                miss_threshold: 5,
                ack: cp_serve::ReplAckPolicy::None,
            }
        );
        // Defaults mirror RouterConfig's.
        let defaults = cp_serve::RouterConfig::default();
        assert!(matches!(
            parse_args(["route", "--backend", "127.0.0.1:1,127.0.0.1:2"]).unwrap(),
            Command::Route { port: 7069, workers: 4, heartbeat_ms, miss_threshold, ack, .. }
                if heartbeat_ms == defaults.heartbeat.as_millis() as u64
                    && miss_threshold == defaults.miss_threshold
                    && ack == cp_serve::ReplAckPolicy::Quorum
        ));
        assert!(parse_args(["route"]).is_err(), "route needs a backend");
        assert!(parse_args(["route", "--backend", "no-comma"]).is_err(), "malformed pair");
        assert!(
            parse_args(["route", "--backend", "127.0.0.1:1,127.0.0.1:2", "--heartbeat-ms", "0"])
                .is_err(),
            "zero heartbeat would spin"
        );
        assert!(
            parse_args(["route", "--backend", "127.0.0.1:1,127.0.0.1:2", "--miss-threshold", "0"])
                .is_err(),
            "zero misses would flap"
        );
        assert!(
            parse_args(["route", "--backend", "127.0.0.1:1,127.0.0.1:2", "--ack", "most"]).is_err(),
            "unknown policy"
        );
    }

    #[test]
    fn usage_lists_every_subcommand() {
        for sub in [
            "classify",
            "simulate",
            "jar",
            "serve",
            "route",
            "chaos-proxy",
            "loadgen",
            "crawl",
            "get",
            "help",
        ] {
            assert!(
                USAGE.lines().any(|l| l.trim_start().starts_with(&format!("cookiepicker {sub}"))),
                "USAGE must document {sub}"
            );
        }
    }

    #[test]
    fn classify_json_emits_service_serialization() {
        let dir = std::env::temp_dir().join(format!("cp-cli-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.html");
        std::fs::write(&a, "<body><p>same</p></body>").unwrap();
        let cmd =
            parse_args(["classify", a.to_str().unwrap(), a.to_str().unwrap(), "--json"]).unwrap();
        let mut out = Vec::new();
        run(cmd, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let parsed = cp_runtime::json::Json::parse(text.trim()).unwrap();
        use cp_runtime::json::FromJson;
        let decision = cookiepicker_core::Decision::from_json(&parsed).unwrap();
        assert!(!decision.cookies_caused_difference);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn classify_runs_on_files() {
        let dir = std::env::temp_dir().join(format!("cp-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.html");
        let b = dir.join("b.html");
        std::fs::write(
            &a,
            "<body><div id=s><ul><li>one</li><li>two</li></ul></div><p>base</p></body>",
        )
        .unwrap();
        std::fs::write(&b, "<body><p>base</p></body>").unwrap();
        let cmd = parse_args(["classify", a.to_str().unwrap(), b.to_str().unwrap(), "--explain"])
            .unwrap();
        let mut out = Vec::new();
        run(cmd, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("NTreeSim"));
        assert!(text.contains("USEFUL"), "{text}");
        assert!(text.contains("unmatched structure"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn classify_identical_files_is_noise() {
        let dir = std::env::temp_dir().join(format!("cp-cli-test2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("same.html");
        std::fs::write(&a, "<body><p>hello</p></body>").unwrap();
        let cmd = parse_args(["classify", a.to_str().unwrap(), a.to_str().unwrap()]).unwrap();
        let mut out = Vec::new();
        run(cmd, &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("noise"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn jar_subcommand_reads_persisted_jar() {
        use cp_cookies::Cookie;
        let dir = std::env::temp_dir().join(format!("cp-cli-test3-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut jar = CookieJar::new();
        jar.store(Cookie::new("k", "v", "x.example", SimTime::EPOCH), SimTime::EPOCH);
        let path = dir.join("jar.json");
        std::fs::write(&path, jar.to_json()).unwrap();
        let cmd = parse_args(["jar", path.to_str().unwrap()]).unwrap();
        let mut out = Vec::new();
        run(cmd, &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("x.example"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_a_cli_error() {
        let cmd = parse_args(["classify", "/nonexistent/a", "/nonexistent/b"]).unwrap();
        let mut out = Vec::new();
        assert!(run(cmd, &mut out).is_err());
    }
}
