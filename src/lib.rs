//! # CookiePicker
//!
//! Facade crate for the CookiePicker reproduction (DSN 2007). Re-exports the
//! public API of every workspace crate. See the README for an overview and
//! `examples/` for runnable scenarios.

#![forbid(unsafe_code)]

pub mod cli;

pub use cookiepicker_core as core;
pub use cp_browser as browser;
pub use cp_cookies as cookies;
pub use cp_crawl as crawl;
pub use cp_doppelganger as doppelganger;
pub use cp_html as html;
pub use cp_net as net;
pub use cp_serve as serve;
pub use cp_treediff as treediff;
pub use cp_webworld as webworld;

/// Summary of one simulated training run (used by the CLI's `simulate`).
#[derive(Debug, Clone)]
pub struct SimulatedSite {
    /// Persistent cookies the site ended up with.
    pub persistent: usize,
    /// Cookies CookiePicker marked useful.
    pub marked_useful: usize,
}

/// Trains CookiePicker on one site spec and summarizes the outcome — a
/// dependency-light sibling of `cp_bench::run_site_training` for the CLI.
pub fn simulate_site(spec: &cp_webworld::SiteSpec, seed: u64) -> SimulatedSite {
    use std::sync::Arc;
    let server = cp_webworld::SiteServer::new(spec.clone());
    let latency = server.latency_model();
    let mut net = cp_net::SimNetwork::new(seed ^ spec.seed);
    net.register_with_latency(spec.domain.clone(), server, latency);
    let mut browser =
        cp_browser::Browser::new(Arc::new(net), cp_cookies::CookiePolicy::AcceptAll, seed);
    let mut picker =
        cookiepicker_core::CookiePicker::new(cookiepicker_core::CookiePickerConfig::default());
    let paths = spec.page_paths();
    for i in 0..paths.len() * 2 + 4 {
        let url = cp_net::Url::parse(&format!("http://{}{}", spec.domain, paths[i % paths.len()]))
            .expect("valid url");
        browser.visit_with(&url, &mut picker).expect("visit");
        browser.think();
    }
    let (persistent, marked_useful) = browser.jar.site_stats(&spec.domain, browser.now());
    SimulatedSite { persistent, marked_useful }
}
