//! The `cookiepicker` CLI entry point. See [`cookiepicker::cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match cookiepicker::cli::parse_args(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", cookiepicker::cli::USAGE);
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout().lock();
    if let Err(e) = cookiepicker::cli::run(command, &mut stdout) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
