//! The reproducibility contract: two loadgen runs with the same seed,
//! against two same-seed servers, produce *identical* decision and
//! verdict counters in `/metrics` — wall-clock metrics excluded.
//!
//! This holds because (a) the embedded world derives page-dynamics noise
//! from `(site seed, path, variant)` rather than shared RNG state, so
//! every render is a pure function of the request, and (b) loadgen
//! partitions sites across client threads, so each site sees its visits
//! in one thread's deterministic order regardless of scheduling.

use cookiepicker::serve::loadgen::{run, LoadgenConfig};
use cookiepicker::serve::metrics::scrape_counter;
use cookiepicker::serve::{start, ServeConfig};

/// Counter series that must be identical between same-seed runs. Latency
/// histograms and throughput are wall-clock and deliberately excluded.
const PINNED_SERIES: &[&str] = &[
    "cp_decisions_total{verdict=\"useful\"}",
    "cp_decisions_total{verdict=\"noise\"}",
    "cp_requests_total{endpoint=\"classify\"}",
    "cp_requests_total{endpoint=\"visit\"}",
    "cp_requests_total{endpoint=\"sites\"}",
    "cp_requests_total{endpoint=\"healthz\"}",
    "cp_responses_total{class=\"2xx\"}",
    "cp_responses_total{class=\"4xx\"}",
    "cp_responses_total{class=\"5xx\"}",
];

fn one_run(seed: u64, requests: u64, threads: usize) -> (Vec<u64>, u64, u64) {
    let server =
        start(ServeConfig { seed, workers: 3, ..ServeConfig::default() }).expect("bind port 0");
    let report = run(&LoadgenConfig {
        port: server.port(),
        threads,
        requests,
        seed,
        ..LoadgenConfig::default()
    })
    .expect("loadgen run");
    assert_eq!(report.status_5xx, 0, "no server errors");
    assert_eq!(report.transport_errors, 0);
    assert!(report.counters_match, "server verdict counters must match the client tally");
    let exposition = server.metrics().render_prometheus();
    let counters = PINNED_SERIES
        .iter()
        .map(|series| scrape_counter(&exposition, series).unwrap_or(u64::MAX))
        .collect();
    (counters, report.client_useful, report.client_noise)
}

#[test]
fn same_seed_runs_produce_identical_counters() {
    let (counters_a, useful_a, noise_a) = one_run(7, 600, 3);
    let (counters_b, useful_b, noise_b) = one_run(7, 600, 3);
    assert_eq!(counters_a, counters_b, "series order: {PINNED_SERIES:?}");
    assert_eq!((useful_a, noise_a), (useful_b, noise_b));
    assert!(useful_a + noise_a > 0, "the mix must exercise the decision engine");
}

#[test]
fn different_seeds_diverge() {
    // Sanity check that the pin above is not vacuous: a different seed
    // changes the population and the mix, so counters should differ.
    let (counters_a, ..) = one_run(7, 600, 3);
    let (counters_c, ..) = one_run(8, 600, 3);
    assert_ne!(counters_a, counters_c);
}
