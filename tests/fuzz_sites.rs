//! Fuzz-style integration: CookiePicker invariants over randomly generated
//! sites (burst-free, clearly-visible effects).
//!
//! * A useful cookie with a Medium/Large effect is never missed under the
//!   paper's grouping (the zero-recovery property of §5.2).
//! * A burst-free site with only trackers never gets a mark (the
//!   false-positive-free property of the 25 clean Table-1 sites).

use cookiepicker::webworld::random_site;
use cp_bench::{run_site_training, TrainingOptions};

#[test]
fn random_sites_uphold_detector_invariants() {
    for i in 0..16usize {
        let spec = random_site(42, i);
        let r = run_site_training(&spec, &TrainingOptions::default());

        // Invariant 1: never miss a (clearly visible) useful cookie.
        assert!(
            !r.missed_useful(),
            "site {} ({:?} layout) missed {:?}; marked {:?}",
            spec.domain,
            spec.layout,
            spec.useful_cookie_names(),
            r.marked_names
        );

        // Invariant 2: tracker-only burst-free sites stay clean.
        if spec.useful_cookie_names().is_empty() {
            assert_eq!(
                r.marked_useful, 0,
                "site {} marked trackers {:?} despite having no useful cookie",
                spec.domain, r.marked_names
            );
        }

        // Sanity: the jar saw every persistent cookie the spec defines
        // (all scopes are visited by page_paths).
        assert_eq!(r.persistent, spec.persistent_count(), "site {}", spec.domain);
    }
}

#[test]
fn random_sites_across_seeds() {
    for seed in [7u64, 99, 12345] {
        for i in 0..5usize {
            let spec = random_site(seed, i);
            let opts = TrainingOptions { seed, ..TrainingOptions::default() };
            let r = run_site_training(&spec, &opts);
            assert!(!r.missed_useful(), "seed {seed} site {}", spec.domain);
            if spec.useful_cookie_names().is_empty() {
                assert_eq!(r.marked_useful, 0, "seed {seed} site {}", spec.domain);
            }
        }
    }
}
