//! Cluster safety properties, pinned end-to-end over real sockets:
//!
//! 1. A stale-generation replication handshake is fenced — the follower
//!    answers with its (newer) generation and applies nothing.
//! 2. Promote → rejoin → re-promote never double-applies: once a node
//!    has witnessed a newer generation, the old primary's established
//!    stream stops being applied *and* stops being acked, so the stale
//!    primary cannot acknowledge writes the cluster will lose.
//!
//! Both are the invariants `scripts/cluster.sh` exercises with kill -9;
//! here they run deterministically in-process on every `cargo test`.
//!
//! The self-healing suite below adds the resync ladder (§16): backlog
//! replay across a partition, snapshot bootstrap when the ring is
//! overrun, and the bounded-stall guarantee for a silent follower —
//! each driven through the deterministic chaos proxy.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use cookiepicker::serve::loadgen::Client;
use cookiepicker::serve::replication::{
    ReplAckPolicy, ACK_DEADLINE, HANDSHAKE_BYTES, HANDSHAKE_REPLY_BYTES, REPL_MAGIC,
};
use cookiepicker::serve::{start, ChaosProxy, Phase, ServeConfig, ServerHandle};
use cp_runtime::json::Json;

fn node(config: ServeConfig) -> ServerHandle {
    start(ServeConfig {
        workers: 2,
        read_timeout: Duration::from_millis(2_000),
        write_timeout: Duration::from_millis(2_000),
        ..config
    })
    .expect("bind port 0")
}

fn get(port: u16, target: &str) -> String {
    let mut client = Client::new("127.0.0.1", port);
    let response = client.request("GET", target, b"").expect("request");
    response.body_string()
}

fn post(port: u16, target: &str, body: &str) -> (u16, String) {
    let mut client = Client::new("127.0.0.1", port);
    let response = client.request("POST", target, body.as_bytes()).expect("request");
    (response.status, response.body_string())
}

fn health(port: u16) -> Json {
    Json::parse(&get(port, "/healthz")).expect("healthz json")
}

fn applied_seq(port: u16) -> u64 {
    health(port).get("replication_applied_seq").and_then(Json::as_f64).unwrap_or(0.0) as u64
}

/// Trains the Table-1 site with genuinely useful preference cookies (S6)
/// through `port`, accumulating the jar so the probes see the cookies they
/// judge. Returns the host. Panics if any visit is not acked.
fn train_s6(port: u16) -> String {
    let host = cp_webworld::table1_population(7)[5].domain.clone();
    let mut client = Client::new("127.0.0.1", port);
    let mut jar: Vec<String> = Vec::new();
    for i in 0..8 {
        let path = if i == 0 { "/".to_string() } else { format!("/page/{i}") };
        let mut body = Json::object().set("host", host.as_str()).set("path", path);
        if !jar.is_empty() {
            body = body.set("cookie", jar.join("; "));
        }
        let response =
            client.request("POST", "/v1/visit", body.to_compact().as_bytes()).expect("visit");
        assert_eq!(response.status, 200, "{}", response.body_string());
        let json = Json::parse(&response.body_string()).unwrap();
        for cookie in json.get("set_cookies").and_then(Json::as_array).into_iter().flatten() {
            let cookie = cookie.as_str().unwrap().to_string();
            if !jar.contains(&cookie) {
                jar.push(cookie);
            }
        }
    }
    host
}

/// Scrapes one counter/gauge value from `port`'s Prometheus exposition.
fn metric(port: u16, name: &str) -> u64 {
    let exposition = get(port, "/metrics");
    for line in exposition.lines() {
        if let Some(rest) = line.strip_prefix(name) {
            if let Some(value) = rest.strip_prefix(' ') {
                return value.trim().parse::<f64>().unwrap_or(0.0) as u64;
            }
        }
    }
    0
}

/// Polls `check` until it passes or `secs` elapse (then panics with `what`).
fn wait_until(secs: u64, what: &str, mut check: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while !check() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// One acked training visit through `port`.
fn visit(port: u16, host: &str, path: &str) {
    let (status, body) =
        post(port, "/v1/visit", &format!(r#"{{"host":"{host}","path":"{path}"}}"#));
    assert_eq!(status, 200, "visit {path}: {body}");
}

/// Flips the proxy phase and waits out the pump re-sample window, so
/// traffic sent next is certainly subject to the new phase (a pump
/// mid-read can hold the previous phase for one read-timeout tick).
fn flip(proxy: &ChaosProxy, phase: Phase) {
    proxy.set_phase(phase);
    std::thread::sleep(Duration::from_millis(50));
}

/// Raw replication handshake against `addr`, returning the follower's
/// 17-byte reply `(status, generation, applied_seq)`.
fn handshake(addr: &str, generation: u64) -> (u8, u64, u64) {
    let mut stream = TcpStream::connect(addr).expect("connect repl");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    stream.set_write_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut hello = [0u8; HANDSHAKE_BYTES];
    hello[..8].copy_from_slice(REPL_MAGIC);
    hello[8..].copy_from_slice(&generation.to_le_bytes());
    stream.write_all(&hello).expect("write handshake");
    let mut reply = [0u8; HANDSHAKE_REPLY_BYTES];
    stream.read_exact(&mut reply).expect("read handshake reply");
    (
        reply[0],
        u64::from_le_bytes(reply[1..9].try_into().unwrap()),
        u64::from_le_bytes(reply[9..17].try_into().unwrap()),
    )
}

#[test]
fn stale_generation_handshake_is_fenced_without_state_change() {
    let follower = node(ServeConfig { repl_port: Some(0), ..ServeConfig::default() });
    let repl = follower.repl_addr().expect("repl listener").to_string();

    // A fresh node accepts generation 5 — the reply carries its state
    // *before* adoption (generation 0, nothing applied) so the primary
    // learns how far behind the follower is.
    let (status, generation, seq) = handshake(&repl, 5);
    assert_eq!((status, generation, seq), (0, 0, 0));
    // Adoption happens right after the reply; poll the tiny window out.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let h = health(follower.port());
        if h.get("generation").and_then(Json::as_f64) == Some(5.0) {
            assert_eq!(h.get("role").and_then(Json::as_str), Some("follower"));
            break;
        }
        assert!(std::time::Instant::now() < deadline, "follower never adopted generation 5: {h:?}");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Generation 3 is now stale: fenced, and the reply names the witnessed
    // generation so the caller knows how far behind it is.
    let (status, generation, _) = handshake(&repl, 3);
    assert_eq!(status, 1, "stale generation must be fenced");
    assert_eq!(generation, 5, "the fence reply names the witnessed generation");

    // No state change: still a generation-5 follower with nothing applied.
    let h = health(follower.port());
    assert_eq!(h.get("role").and_then(Json::as_str), Some("follower"));
    assert_eq!(h.get("generation").and_then(Json::as_f64), Some(5.0));
    assert_eq!(applied_seq(follower.port()), 0);
    assert_eq!(get(follower.port(), "/v1/marks"), "", "nothing applied, nothing marked");
}

#[test]
fn promote_rejoin_repromote_never_double_applies() {
    // Two nodes, both with replication listeners so either can follow.
    let a = node(ServeConfig { repl_port: Some(0), ..ServeConfig::default() });
    let b = node(ServeConfig { repl_port: Some(0), ..ServeConfig::default() });
    let a_repl = a.repl_addr().unwrap().to_string();
    let b_repl = b.repl_addr().unwrap().to_string();

    // A leads B at generation 1. Default quorum with one follower needs
    // that follower's ack, so every 200 means B holds the record too.
    let (status, body) =
        post(a.port(), "/v1/repl/lead", &format!(r#"{{"generation":1,"followers":["{b_repl}"]}}"#));
    assert_eq!(status, 200, "{body}");
    let host = train_s6(a.port());
    let marks = get(a.port(), "/v1/marks");
    assert!(!marks.is_empty(), "training must have marked something");
    assert_eq!(get(b.port(), "/v1/marks"), marks, "acked marks are on the follower");
    let applied_before = applied_seq(b.port());
    assert!(applied_before >= 1);

    // Promote B at generation 2 (no followers). A is now a stale primary
    // with an established gen-1 stream to B.
    let (status, body) = post(b.port(), "/v1/repl/lead", r#"{"generation":2,"followers":[]}"#);
    assert_eq!(status, 200, "{body}");

    // A write to the stale primary must not be acked: B fences the gen-1
    // stream mid-flight, A collects zero of its one required ack, and the
    // client sees 503 (safe to retry against the new primary).
    let (status, body) =
        post(a.port(), "/v1/visit", &format!(r#"{{"host":"{host}","path":"/stale-write"}}"#));
    assert_eq!(status, 503, "stale primary cannot ack: {body}");
    assert_eq!(
        applied_seq(b.port()),
        applied_before,
        "the fenced stream must not apply on the new primary"
    );

    // Rejoin: B re-leads at generation 3 with A as its follower — the
    // handshake adopts A (gen 3 > 1), demoting the stale primary.
    let (status, body) =
        post(b.port(), "/v1/repl/lead", &format!(r#"{{"generation":3,"followers":["{a_repl}"]}}"#));
    assert_eq!(status, 200, "{body}");
    assert_eq!(health(a.port()).get("role").and_then(Json::as_str), Some("follower"));
    assert_eq!(health(a.port()).get("generation").and_then(Json::as_f64), Some(3.0));

    // Direct writes to the demoted node are fenced...
    let (status, _) =
        post(a.port(), "/v1/visit", &format!(r#"{{"host":"{host}","path":"/demoted"}}"#));
    assert_eq!(status, 503);

    // ...and a write through the new primary applies exactly once on the
    // rejoined follower: its applied counter moves by one record, never two.
    let a_applied = applied_seq(a.port());
    let (status, body) =
        post(b.port(), "/v1/visit", &format!(r#"{{"host":"{host}","path":"/after-rejoin"}}"#));
    assert_eq!(status, 200, "{body}");
    assert_eq!(applied_seq(a.port()), a_applied + 1, "one acked write, one applied record");
    assert_eq!(get(a.port(), "/v1/marks"), get(b.port(), "/v1/marks"));
}

#[test]
fn partitioned_follower_resyncs_from_backlog_without_double_apply() {
    // Primary ships through a chaos proxy so the partition is a phase
    // flip, not a kill. Ack policy `none` keeps the primary writable
    // while the follower is unreachable — exactly the window the backlog
    // ring must cover.
    let a = node(ServeConfig {
        repl_port: Some(0),
        repl_ack: ReplAckPolicy::None,
        ..ServeConfig::default()
    });
    let b = node(ServeConfig { repl_port: Some(0), ..ServeConfig::default() });
    let proxy =
        ChaosProxy::start("127.0.0.1:0", &b.repl_addr().unwrap().to_string(), 7).expect("proxy");

    let (status, body) = post(
        a.port(),
        "/v1/repl/lead",
        &format!(r#"{{"generation":1,"followers":["{}"]}}"#, proxy.addr()),
    );
    assert_eq!(status, 200, "{body}");
    let host = train_s6(a.port());
    wait_until(10, "initial follower sync", || applied_seq(b.port()) == applied_seq(a.port()));
    let marks = get(a.port(), "/v1/marks");
    assert!(!marks.is_empty());

    // Partition. The primary keeps acking writes (policy none); the
    // follower misses them and its stream dies.
    flip(&proxy, Phase::Cut);
    for i in 0..6 {
        visit(a.port(), &host, &format!("/during-partition/{i}"));
    }
    let head = applied_seq(a.port());
    assert!(applied_seq(b.port()) < head, "follower must have missed the partition writes");

    // Heal: the maintenance thread redials through the proxy and replays
    // exactly the gap from the in-memory backlog — no restart, no
    // operator action, no snapshot.
    flip(&proxy, Phase::Open);
    wait_until(15, "backlog resync", || applied_seq(b.port()) == applied_seq(a.port()));
    assert_eq!(
        applied_seq(b.port()),
        head,
        "replay lands the follower exactly at the primary's head — an \
         overshoot would mean a record applied twice"
    );
    assert_eq!(get(b.port(), "/v1/marks"), get(a.port(), "/v1/marks"));
    assert!(metric(a.port(), "cp_repl_resync_total") >= 1, "resync must be counted");
    assert!(metric(a.port(), "cp_repl_resync_records_total") >= 6, "the gap was replayed");
    assert_eq!(metric(a.port(), "cp_repl_bootstrap_hints_total"), 0, "no bootstrap needed");

    // And the healed stream is live again: a post-heal write applies.
    visit(a.port(), &host, "/after-heal");
    wait_until(10, "post-heal ship", || applied_seq(b.port()) == applied_seq(a.port()));
}

#[test]
fn overrun_backlog_falls_back_to_snapshot_bootstrap() {
    // A four-record ring cannot cover a partition that misses eight
    // writes: the resync ladder must step down to the snapshot transfer.
    let a = node(ServeConfig {
        repl_port: Some(0),
        repl_ack: ReplAckPolicy::None,
        repl_backlog: 4,
        ..ServeConfig::default()
    });
    let b = node(ServeConfig { repl_port: Some(0), ..ServeConfig::default() });
    let proxy =
        ChaosProxy::start("127.0.0.1:0", &b.repl_addr().unwrap().to_string(), 7).expect("proxy");

    let (status, body) = post(
        a.port(),
        "/v1/repl/lead",
        &format!(r#"{{"generation":1,"followers":["{}"]}}"#, proxy.addr()),
    );
    assert_eq!(status, 200, "{body}");
    let host = train_s6(a.port());
    wait_until(10, "initial follower sync", || applied_seq(b.port()) == applied_seq(a.port()));

    flip(&proxy, Phase::Cut);
    for i in 0..8 {
        visit(a.port(), &host, &format!("/beyond-the-ring/{i}"));
    }
    flip(&proxy, Phase::Open);

    // The redial finds the follower beyond the ring, hints the bootstrap,
    // the follower pulls /v1/repl/snapshot from the primary and rejoins
    // the live stream at its head.
    wait_until(20, "snapshot bootstrap", || applied_seq(b.port()) == applied_seq(a.port()));
    assert_eq!(get(b.port(), "/v1/marks"), get(a.port(), "/v1/marks"));
    assert!(metric(a.port(), "cp_repl_bootstrap_hints_total") >= 1, "primary hinted the overrun");
    assert!(metric(b.port(), "cp_repl_bootstrap_total") >= 1, "follower installed a snapshot");

    // Still a working replica afterwards.
    visit(a.port(), &host, "/after-bootstrap");
    wait_until(10, "post-bootstrap ship", || applied_seq(b.port()) == applied_seq(a.port()));
}

#[test]
fn stalled_follower_is_demoted_within_the_ack_deadline() {
    // Two followers under quorum: one follower ack suffices (2 of 3
    // nodes). Stalling one must cost a write at most ~ACK_DEADLINE, not
    // the 5 s stream timeout the old path blocked for.
    let a = node(ServeConfig { repl_port: Some(0), ..ServeConfig::default() });
    let b = node(ServeConfig { repl_port: Some(0), ..ServeConfig::default() });
    let c = node(ServeConfig { repl_port: Some(0), ..ServeConfig::default() });
    let proxy =
        ChaosProxy::start("127.0.0.1:0", &c.repl_addr().unwrap().to_string(), 7).expect("proxy");

    let (status, body) = post(
        a.port(),
        "/v1/repl/lead",
        &format!(
            r#"{{"generation":1,"followers":["{}","{}"]}}"#,
            b.repl_addr().unwrap(),
            proxy.addr()
        ),
    );
    assert_eq!(status, 200, "{body}");
    let host = train_s6(a.port());
    wait_until(10, "both followers sync", || {
        applied_seq(b.port()) == applied_seq(a.port())
            && applied_seq(c.port()) == applied_seq(a.port())
    });

    // Stall: bytes stop flowing to/from C but its connection stays up —
    // the silent-peer case that must trip the deadline, not an error path.
    flip(&proxy, Phase::Stall);
    let started = Instant::now();
    visit(a.port(), &host, "/during-stall");
    let elapsed = started.elapsed();
    assert!(
        elapsed < ACK_DEADLINE * 8,
        "a stalled follower held the write for {elapsed:?} — the demotion \
         deadline is {ACK_DEADLINE:?}"
    );
    assert!(metric(a.port(), "cp_repl_slow_demotions_total") >= 1, "the stall demoted the peer");

    // Subsequent writes no longer pay the deadline at all: the demoted
    // peer is off the write path until it catches up.
    let started = Instant::now();
    for i in 0..3 {
        visit(a.port(), &host, &format!("/post-demotion/{i}"));
    }
    assert!(started.elapsed() < ACK_DEADLINE * 3, "catching-up peers must not gate client writes");
    assert_eq!(applied_seq(b.port()), applied_seq(a.port()), "quorum follower kept up");

    // Heal: the maintenance drain feeds C the backlog and promotes it.
    flip(&proxy, Phase::Open);
    wait_until(15, "stalled follower catch-up", || applied_seq(c.port()) == applied_seq(a.port()));
    assert_eq!(get(c.port(), "/v1/marks"), get(a.port(), "/v1/marks"));
}
