//! Cross-crate integration tests: the full browser + picker + policy
//! lifecycle on individual synthetic sites.

use std::sync::Arc;

use cookiepicker::browser::Browser;
use cookiepicker::cookies::{CookiePolicy, SimTime};
use cookiepicker::core::{CookiePicker, CookiePickerConfig, TestGroupStrategy};
use cookiepicker::net::{SimNetwork, Url};
use cookiepicker::webworld::{Category, CookieRole, CookieSpec, EffectSize, SiteServer, SiteSpec};

fn world(spec: SiteSpec, net_seed: u64, browser_seed: u64) -> (Browser, Url) {
    let domain = spec.domain.clone();
    let mut net = SimNetwork::new(net_seed);
    net.register(domain.clone(), SiteServer::new(spec));
    let browser = Browser::new(Arc::new(net), CookiePolicy::AcceptAll, browser_seed);
    (browser, Url::parse(&format!("http://{domain}/")).unwrap())
}

fn train(browser: &mut Browser, picker: &mut CookiePicker, base: &Url, views: usize) {
    for i in 0..views {
        let url = base.join(&format!("/page/{}", i % 8));
        browser.visit_with(&url, picker).expect("visit");
        browser.think();
    }
}

#[test]
fn full_lifecycle_preference_site() {
    let spec = SiteSpec::new("life.example", Category::Home, 100)
        .with_cookie(CookieSpec::useful("pref", CookieRole::Preference, EffectSize::Large))
        .with_cookie(CookieSpec::tracker("trk"))
        .with_cookie(CookieSpec::session("sid"));
    let (mut browser, url) = world(spec, 1, 2);
    let mut picker = CookiePicker::new(
        CookiePickerConfig::default().with_strategy(TestGroupStrategy::PerCookie),
    );

    // Phase 1: training marks pref, not trk.
    train(&mut browser, &mut picker, &url, 12);
    assert!(browser.jar.iter().any(|c| c.name == "pref" && c.useful()));
    assert!(browser.jar.iter().any(|c| c.name == "trk" && !c.useful()));

    // Phase 2: finalize removes trk, keeps pref and the session cookie.
    let removed = picker.finalize_site("life.example", &mut browser.jar);
    assert_eq!(removed, vec!["trk".to_string()]);
    assert!(browser.jar.iter().any(|c| c.name == "sid"));

    // Phase 3: UsefulOnly policy — the user keeps the personalization.
    browser.set_policy(CookiePolicy::UsefulOnly);
    let view = browser.visit(&url).expect("visit");
    assert!(view.html().contains("personalized"), "preference survives");
    let header = view.container_request.cookie_header().unwrap();
    assert!(header.contains("pref="));
    assert!(!header.contains("trk="));
}

#[test]
fn forcum_goes_dormant_and_reactivates_on_new_cookie() {
    // A site whose cookie set is stable: training must turn itself off
    // after the stability window, and stop issuing hidden requests.
    let spec = SiteSpec::new("dormant.example", Category::Science, 101)
        .with_cookie(CookieSpec::tracker("only"));
    let (mut browser, url) = world(spec, 3, 4);
    let config = CookiePickerConfig { stability_window: 5, ..CookiePickerConfig::default() };
    let mut picker = CookiePicker::new(config);

    train(&mut browser, &mut picker, &url, 16);
    assert!(!picker.forcum().is_active("dormant.example"), "training must stop");
    let probes_when_dormant = picker.records().len();
    train(&mut browser, &mut picker, &url, 4);
    assert_eq!(picker.records().len(), probes_when_dormant, "no probes while dormant");

    // Manual restart (the paper's user-initiated re-training).
    // (New-cookie reactivation is covered by unit tests in cookiepicker-core.)
    // After restart, probing resumes.
    let before = picker.records().len();
    // recovery_click also restarts training as a side effect when a group
    // exists; use the forcum restart path via a fresh visit after restart.
    picker.recovery_click("dormant.example", &mut browser.jar);
    train(&mut browser, &mut picker, &url, 2);
    assert!(picker.records().len() >= before, "probing may resume after restart");
}

#[test]
fn third_party_cookies_isolated_from_first_party_site() {
    // Two sites; one embeds an object from the other. Under
    // BlockThirdParty, the tracker host cannot set cookies via the embed.
    struct EmbeddingServer;
    impl cookiepicker::net::Server for EmbeddingServer {
        fn handle(
            &self,
            _req: &cookiepicker::net::Request,
            _now: SimTime,
        ) -> cookiepicker::net::Response {
            cookiepicker::net::Response::html(
                cookiepicker::net::StatusCode::OK,
                r#"<body><p>page</p><img src="http://tracker.example/pixel.png"></body>"#,
            )
        }
    }
    struct TrackerServer;
    impl cookiepicker::net::Server for TrackerServer {
        fn handle(
            &self,
            _req: &cookiepicker::net::Request,
            _now: SimTime,
        ) -> cookiepicker::net::Response {
            let mut r = cookiepicker::net::Response::html(cookiepicker::net::StatusCode::OK, "gif");
            r.add_set_cookie("track=me; Expires=Tue, 01 Jan 2008 00:00:00 GMT");
            r
        }
    }

    let mut net = SimNetwork::new(5);
    net.register("page.example", EmbeddingServer);
    net.register("tracker.example", TrackerServer);
    let net = Arc::new(net);

    // AcceptAll: third-party cookie lands in the jar.
    let mut browser = Browser::new(Arc::clone(&net), CookiePolicy::AcceptAll, 6);
    browser.visit(&Url::parse("http://page.example/").unwrap()).unwrap();
    assert!(browser.jar.iter().any(|c| c.domain == "tracker.example"));

    // BlockThirdParty: it does not.
    let mut browser = Browser::new(net, CookiePolicy::BlockThirdParty, 6);
    browser.visit(&Url::parse("http://page.example/").unwrap()).unwrap();
    assert!(!browser.jar.iter().any(|c| c.domain == "tracker.example"));
}

#[test]
fn evasion_defeats_detection_but_recovery_fixes_it() {
    let spec = SiteSpec::new("evade.example", Category::Business, 102)
        .with_cookie(CookieSpec::useful("pref", CookieRole::Preference, EffectSize::Medium));
    let domain = spec.domain.clone();
    let mut net = SimNetwork::new(7);
    net.register(domain.clone(), SiteServer::new(spec).with_hidden_request_evasion());
    let mut browser = Browser::new(Arc::new(net), CookiePolicy::AcceptAll, 8);
    let url = Url::parse("http://evade.example/").unwrap();

    let mut picker = CookiePicker::new(CookiePickerConfig::default());
    train(&mut browser, &mut picker, &url, 8);
    assert!(
        browser.jar.iter().all(|c| !c.useful()),
        "evading site hides the cookie effect from the hidden request"
    );
    // The user notices the lost personalization and clicks recovery.
    let recovered = picker.recovery_click("evade.example", &mut browser.jar);
    assert!(recovered.contains(&"pref".to_string()));
    assert!(browser.jar.iter().any(|c| c.name == "pref" && c.useful()));
}

#[test]
fn deterministic_end_to_end() {
    let run = || {
        let spec = SiteSpec::new("det.example", Category::Games, 103)
            .with_cookie(CookieSpec::tracker("a"))
            .with_cookie(CookieSpec::useful("p", CookieRole::Preference, EffectSize::Medium));
        let (mut browser, url) = world(spec, 11, 12);
        let mut picker = CookiePicker::new(CookiePickerConfig::default());
        train(&mut browser, &mut picker, &url, 10);
        let sims: Vec<(u64, u64)> = picker
            .records()
            .iter()
            .map(|r| (r.decision.tree_sim.to_bits(), r.decision.text_sim.to_bits()))
            .collect();
        (browser.now(), sims)
    };
    assert_eq!(run(), run(), "whole pipeline must be bit-deterministic");
}

#[test]
fn jar_state_consistent_after_training() {
    let spec = SiteSpec::new("consist.example", Category::Health, 104)
        .with_cookie(CookieSpec::tracker("t1"))
        .with_cookie(CookieSpec::useful("p1", CookieRole::Performance, EffectSize::Large));
    let (mut browser, url) = world(spec, 13, 14);
    let mut picker = CookiePicker::new(CookiePickerConfig::default());
    train(&mut browser, &mut picker, &url, 10);

    let now = browser.now();
    // Every cookie in the jar domain-matches the site and is unexpired.
    for c in browser.jar.cookies_for_site("consist.example", now) {
        assert!(c.domain_matches("consist.example"));
        assert!(!c.is_expired(now));
    }
    // site_stats agrees with a manual count.
    let (persistent, useful) = browser.jar.site_stats("consist.example", now);
    let manual_persistent = browser
        .jar
        .iter()
        .filter(|c| c.is_persistent() && c.domain_matches("consist.example"))
        .count();
    assert_eq!(persistent, manual_persistent);
    assert!(useful <= persistent);
}
