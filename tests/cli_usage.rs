//! Pins the CLI's error contract: unknown flags and subcommands exit
//! with status 2 and print the USAGE block on stderr.

use std::process::Command;

fn cookiepicker(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_cookiepicker")).args(args).output().expect("spawn binary")
}

#[test]
fn unknown_flag_exits_2_with_usage_on_stderr() {
    for args in [
        &["classify", "a.html", "b.html", "--bogus"][..],
        &["serve", "--not-a-flag"][..],
        &["loadgen", "--wat", "3"][..],
        &["simulate", "--nope"][..],
    ] {
        let out = cookiepicker(args);
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("error:"), "{args:?}: {stderr}");
        assert!(stderr.contains("USAGE:"), "{args:?} must print usage, got: {stderr}");
        assert!(stderr.contains("cookiepicker serve"), "usage lists serve");
        assert!(stderr.contains("cookiepicker loadgen"), "usage lists loadgen");
        assert!(out.stdout.is_empty(), "errors go to stderr only");
    }
}

#[test]
fn unknown_subcommand_exits_2() {
    let out = cookiepicker(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));
}

#[test]
fn help_exits_0_and_prints_usage_on_stdout() {
    let out = cookiepicker(&["help"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("USAGE:"));
    assert!(stdout.contains("cookiepicker serve"));
    assert!(stdout.contains("cookiepicker loadgen"));
}
