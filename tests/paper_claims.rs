//! End-to-end regression tests pinning the paper's headline results
//! (Tables 1 and 2 and the §2 measurement claim) on the default seeds.
//!
//! These are the claims EXPERIMENTS.md reports; if a refactor breaks the
//! reproduction shape, these tests fail first.

use cookiepicker::webworld::{measurement_population, table1_population, table2_population};
use cp_bench::{run_site_training, TrainingOptions};

#[test]
fn table1_headline_numbers() {
    let sites = table1_population(1);
    let results: Vec<_> =
        sites.iter().map(|s| run_site_training(s, &TrainingOptions::default())).collect();

    let persistent: usize = results.iter().map(|r| r.persistent).sum();
    let marked: usize = results.iter().map(|r| r.marked_useful).sum();
    let real: usize = results.iter().map(|r| r.real_useful).sum();
    assert_eq!(persistent, 103, "Table 1 total persistent cookies");
    assert_eq!(real, 3, "Table 1 real useful cookies");
    assert_eq!(marked, 7, "Table 1 marked-useful cookies");

    let fully_disabled = results.iter().filter(|r| r.marked_useful == 0).count();
    assert_eq!(fully_disabled, 25, "25 of 30 sites fully disabled");

    // The three false-useful sites are exactly the bursty-dynamics ones.
    let false_sites: Vec<usize> = results
        .iter()
        .enumerate()
        .filter(|(_, r)| r.marked_useful > 0 && r.real_useful == 0)
        .map(|(i, _)| i)
        .collect();
    assert_eq!(false_sites, vec![0, 9, 26], "S1, S10, S27");

    // Error kind 2 must not occur: every real useful cookie is marked.
    for (i, r) in results.iter().enumerate() {
        assert!(!r.missed_useful(), "S{} missed a useful cookie", i + 1);
    }

    // The slow sites dominate the duration column.
    let avg = |r: &cp_bench::SiteRunResult| r.avg_duration_ms();
    let slow_avg = (avg(&results[3]) + avg(&results[16]) + avg(&results[27])) / 3.0;
    let normal_avg: f64 = results
        .iter()
        .enumerate()
        .filter(|(i, _)| ![3usize, 16, 27].contains(i))
        .map(|(_, r)| avg(r))
        .sum::<f64>()
        / 27.0;
    assert!(
        slow_avg > normal_avg * 3.0,
        "slow sites must stand out: slow {slow_avg:.0} ms vs normal {normal_avg:.0} ms"
    );

    // Detection is over an order of magnitude below the ~10 s think time.
    let det: f64 = results.iter().map(|r| r.avg_detection_ms()).sum::<f64>() / results.len() as f64;
    assert!(det < 1_000.0, "avg detection {det:.1} ms must stay far below think time");
}

#[test]
fn table2_headline_numbers() {
    let sites = table2_population(1);
    let results: Vec<_> =
        sites.iter().map(|s| run_site_training(s, &TrainingOptions::default())).collect();

    let marked: Vec<usize> = results.iter().map(|r| r.marked_useful).collect();
    let real: Vec<usize> = results.iter().map(|r| r.real_useful).collect();
    assert_eq!(marked, vec![1, 1, 1, 1, 9, 5], "Table 2 marked column");
    assert_eq!(real, vec![1, 1, 1, 1, 1, 2], "Table 2 real column");

    for (i, r) in results.iter().enumerate() {
        assert!(!r.missed_useful(), "P{} missed a useful cookie", i + 1);
        // Similarity scores on the marking probes sit well below 0.85.
        for rec in r.marking_records() {
            assert!(rec.decision.tree_sim <= 0.85, "P{} tree {:.3}", i + 1, rec.decision.tree_sim);
            assert!(rec.decision.text_sim <= 0.85, "P{} text {:.3}", i + 1, rec.decision.text_sim);
        }
        assert!(!r.marking_records().is_empty(), "P{} must have marking probes", i + 1);
    }
}

#[test]
fn measurement_claim_over_sixty_percent_year_plus() {
    let sites = measurement_population(1, 5_000);
    let year = 365u64 * 86_400_000;
    let (mut total, mut long) = (0usize, 0usize);
    for s in &sites {
        for c in &s.cookies {
            if let Some(lt) = c.lifetime {
                total += 1;
                long += usize::from(lt.as_millis() >= year);
            }
        }
    }
    let frac = long as f64 / total as f64;
    assert!(frac > 0.60 && frac < 0.80, "measurement-study share: {frac:.3}");
}

#[test]
fn table1_shape_holds_across_seeds() {
    // The *shape* (not the exact FP count) must be seed-robust: no missed
    // useful cookies, trackers-only sites stay clean, totals fixed.
    for seed in [2u64, 3, 4] {
        let sites = table1_population(seed);
        let opts = TrainingOptions { seed, ..TrainingOptions::default() };
        let results: Vec<_> = sites.iter().map(|s| run_site_training(s, &opts)).collect();
        let persistent: usize = results.iter().map(|r| r.persistent).sum();
        assert_eq!(persistent, 103, "seed {seed}");
        for (i, r) in results.iter().enumerate() {
            assert!(!r.missed_useful(), "seed {seed}: S{} missed useful", i + 1);
            // Non-bursty tracker-only sites must never produce marks.
            let bursty = [0usize, 9, 26].contains(&i);
            if r.real_useful == 0 && !bursty {
                assert_eq!(r.marked_useful, 0, "seed {seed}: S{} false positive", i + 1);
            }
        }
    }
}
