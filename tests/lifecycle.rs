//! Longer-horizon integration scenarios: organic surfing, browser
//! restarts with a persisted jar, path-scoped grouping, and noise-burst
//! false positives.

use std::sync::Arc;

use cookiepicker::browser::{Browser, RandomSurfer};
use cookiepicker::cookies::{CookieJar, CookiePolicy};
use cookiepicker::core::{CookiePicker, CookiePickerConfig, TestGroupStrategy};
use cookiepicker::net::{SimNetwork, Url};
use cookiepicker::webworld::{
    table1_population, Category, CookieRole, CookieSpec, EffectSize, SiteServer, SiteSpec,
};

fn network_for(spec: SiteSpec, seed: u64) -> (Arc<SimNetwork>, Url) {
    let domain = spec.domain.clone();
    let mut net = SimNetwork::new(seed);
    net.register(domain.clone(), SiteServer::new(spec));
    (Arc::new(net), Url::parse(&format!("http://{domain}/")).unwrap())
}

#[test]
fn organic_surfing_trains_cookiepicker() {
    // FORCUM training driven by a random surfer following real page links,
    // rather than a scripted path list.
    let spec = SiteSpec::new("organic.example", Category::Recreation, 301)
        .with_cookie(CookieSpec::tracker("trk"))
        .with_cookie(CookieSpec::useful("pref", CookieRole::Preference, EffectSize::Medium));
    let (net, entry) = network_for(spec, 31);
    let mut browser = Browser::new(net, CookiePolicy::AcceptAll, 32);
    let mut picker = CookiePicker::new(CookiePickerConfig::default());
    let mut surfer = RandomSurfer::new(33);

    let visited = surfer.surf(&mut browser, &entry, 15, &mut picker).unwrap();
    assert_eq!(visited.len(), 15);
    assert!(
        browser.jar.iter().any(|c| c.name == "pref" && c.useful()),
        "surfing must discover the useful preference cookie"
    );
}

#[test]
fn jar_persists_across_browser_restart() {
    // Train, persist the jar (cookies.txt style), restart the browser with
    // the restored jar: marks survive and training does not regress them.
    let spec = SiteSpec::new("restart.example", Category::Business, 302)
        .with_cookie(CookieSpec::tracker("trk"))
        .with_cookie(CookieSpec::useful("pref", CookieRole::Preference, EffectSize::Large));
    let (net, entry) = network_for(spec, 41);

    let saved = {
        let mut browser = Browser::new(Arc::clone(&net), CookiePolicy::AcceptAll, 42);
        // Per-cookie probing keeps the tracker unmarked (no piggyback).
        let mut picker = CookiePicker::new(
            CookiePickerConfig::default().with_strategy(TestGroupStrategy::PerCookie),
        );
        for i in 0..8 {
            browser.visit_with(&entry.join(&format!("/page/{i}")), &mut picker).unwrap();
            browser.think();
        }
        assert!(browser.jar.iter().any(|c| c.name == "pref" && c.useful()));
        browser.jar.to_json()
    };

    // "Restart": new browser process, jar loaded from disk.
    let mut browser = Browser::new(net, CookiePolicy::UsefulOnly, 43);
    browser.jar = CookieJar::from_json(&saved).unwrap();
    let view = browser.visit(&entry).unwrap();
    let header = view.container_request.cookie_header().unwrap_or("").to_string();
    assert!(header.contains("pref="), "restored mark keeps the preference flowing: {header}");
    assert!(!header.contains("trk="), "unmarked tracker stays blocked under UsefulOnly");
    assert!(view.html().contains("personalized"));
}

#[test]
fn s16_path_scoping_isolates_request_groups() {
    // The S16 configuration: 25 persistent cookies, 24 path-scoped
    // trackers, 1 useful preference cookie on its own section. The
    // request-scoped group test must mark exactly one cookie.
    let sites = table1_population(1);
    let s16 = sites[15].clone();
    assert_eq!(s16.persistent_count(), 25);
    let (net, _) = network_for(s16.clone(), 51);
    let mut browser = Browser::new(net, CookiePolicy::AcceptAll, 52);
    let mut picker = CookiePicker::new(CookiePickerConfig::default());

    for path in s16.page_paths().iter().cycle().take(s16.page_paths().len() * 2 + 4) {
        let url = Url::parse(&format!("http://{}{path}", s16.domain)).unwrap();
        browser.visit_with(&url, &mut picker).unwrap();
        browser.think();
    }
    let marked: Vec<String> =
        browser.jar.iter().filter(|c| c.useful()).map(|c| c.name.clone()).collect();
    assert_eq!(marked, vec!["prefs_layout".to_string()], "only the scoped useful cookie");

    // Every probe's group was small: path scoping kept trackers apart.
    for r in picker.records() {
        assert!(r.group.len() <= 2, "groups stay tiny under path scoping: {:?}", r.group);
    }
}

#[test]
fn bursty_site_produces_false_positive_marks() {
    // The S1/S10/S27 mechanism end-to-end: enough page views on a bursty
    // site mark its trackers even though they have no render effect.
    let sites = table1_population(1);
    let s1 = sites[0].clone();
    assert!(s1.noise.structural_burst_prob > 0.0);
    assert!(s1.useful_cookie_names().is_empty());
    let (net, entry) = network_for(s1.clone(), 61);
    let mut browser = Browser::new(net, CookiePolicy::AcceptAll, 62);
    let mut picker = CookiePicker::new(CookiePickerConfig::default());
    for i in 0..30 {
        browser.visit_with(&entry.join(&format!("/page/{}", i % 8)), &mut picker).unwrap();
        browser.think();
    }
    let marked = browser.jar.iter().filter(|c| c.useful()).count();
    assert!(marked > 0, "bursty dynamics should eventually cause a false mark");
}

#[test]
fn entry_redirect_training_still_works() {
    // FORCUM step 1: the hidden request must target the real container
    // (post-redirect), or every probe would compare a 302 stub against the
    // rendered page.
    let spec = SiteSpec::new("redirected.example", Category::Reference, 303)
        .with_cookie(CookieSpec::tracker("trk"))
        .with_cookie(CookieSpec::useful("pref", CookieRole::Preference, EffectSize::Medium))
        .with_entry_redirect();
    let (net, entry) = network_for(spec, 71);
    let mut browser = Browser::new(net, CookiePolicy::AcceptAll, 72);
    let mut picker = CookiePicker::new(CookiePickerConfig::default());

    for _ in 0..6 {
        let view = browser.visit_with(&entry, &mut picker).unwrap();
        assert_eq!(view.url.path(), "/home", "browser followed the entry redirect");
        assert_eq!(view.redirects, 1);
        browser.think();
    }
    assert!(browser.jar.iter().any(|c| c.name == "pref" && c.useful()));
    // The hidden requests targeted the real container, never "/".
    for r in picker.records() {
        assert_eq!(r.path, "/home");
    }
}

#[test]
fn multi_site_browsing_keeps_training_separate() {
    let spec_a = SiteSpec::new("alpha.example", Category::Arts, 304)
        .with_cookie(CookieSpec::useful("pref", CookieRole::Preference, EffectSize::Medium));
    let spec_b = SiteSpec::new("beta.example", Category::Science, 305)
        .with_cookie(CookieSpec::tracker("trk"));
    let mut net = SimNetwork::new(81);
    net.register("alpha.example", SiteServer::new(spec_a));
    net.register("beta.example", SiteServer::new(spec_b));
    let mut browser = Browser::new(Arc::new(net), CookiePolicy::AcceptAll, 82);
    let mut picker = CookiePicker::new(CookiePickerConfig::default());

    for i in 0..6 {
        for host in ["alpha.example", "beta.example"] {
            let url = Url::parse(&format!("http://{host}/page/{i}")).unwrap();
            browser.visit_with(&url, &mut picker).unwrap();
            browser.think();
        }
    }
    assert!(browser.jar.iter().any(|c| c.domain == "alpha.example" && c.useful()));
    assert!(browser.jar.iter().all(|c| c.domain != "beta.example" || !c.useful()));
    assert!(picker.forcum().site("alpha.example").is_some());
    assert!(picker.forcum().site("beta.example").is_some());
}
