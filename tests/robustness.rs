//! Robustness: CookiePicker must survive hostile and broken servers —
//! malformed HTML, empty bodies, server errors, invalid cookies — without
//! panicking or inventing marks.

use std::sync::Arc;

use cookiepicker::browser::Browser;
use cookiepicker::cookies::{CookiePolicy, SimTime};
use cookiepicker::core::{CookiePicker, CookiePickerConfig};
use cookiepicker::net::{Request, Response, Server, SimNetwork, StatusCode, Url};

struct ScriptedServer {
    pages: Vec<(&'static str, Response)>,
}

impl Server for ScriptedServer {
    fn handle(&self, req: &Request, _now: SimTime) -> Response {
        self.pages
            .iter()
            .find(|(p, _)| *p == req.url.path())
            .map(|(_, r)| r.clone())
            .unwrap_or_else(Response::not_found)
    }
}

fn browser_with(pages: Vec<(&'static str, Response)>) -> Browser {
    let mut net = SimNetwork::new(1);
    net.register("hostile.example", ScriptedServer { pages });
    Browser::new(Arc::new(net), CookiePolicy::AcceptAll, 2)
}

fn train(browser: &mut Browser, picker: &mut CookiePicker, paths: &[&str], rounds: usize) {
    for _ in 0..rounds {
        for p in paths {
            let url = Url::parse(&format!("http://hostile.example{p}")).unwrap();
            browser.visit_with(&url, picker).unwrap();
            browser.think();
        }
    }
}

fn cookie_response(body: &str) -> Response {
    let mut r = Response::html(StatusCode::OK, body);
    r.add_set_cookie("sticky=1; Expires=Tue, 01 Jan 2008 00:00:00 GMT");
    r
}

#[test]
fn malformed_html_never_panics() {
    let soup = "<table><div><p>txt</table></p></div><b><i></b></i><<<>&&&<a href=";
    let mut browser =
        browser_with(vec![("/", cookie_response(soup)), ("/x", cookie_response(soup))]);
    let mut picker = CookiePicker::new(CookiePickerConfig::default());
    train(&mut browser, &mut picker, &["/", "/x"], 3);
    // Stable malformed pages: identical regular/hidden versions → no marks.
    assert!(browser.jar.iter().all(|c| !c.useful()));
}

#[test]
fn empty_body_pages_are_not_cookie_evidence() {
    let mut browser = browser_with(vec![("/", cookie_response("")), ("/x", cookie_response(""))]);
    let mut picker = CookiePicker::new(CookiePickerConfig::default());
    train(&mut browser, &mut picker, &["/", "/x"], 3);
    // Empty vs empty: both detectors see "fully similar" → no marks.
    assert!(browser.jar.iter().all(|c| !c.useful()));
    assert!(!picker.records().is_empty());
    for r in picker.records() {
        assert_eq!(r.decision.tree_sim, 1.0);
        assert_eq!(r.decision.text_sim, 1.0);
    }
}

#[test]
fn server_error_pages_handled() {
    let mut err = Response::html(StatusCode::INTERNAL_SERVER_ERROR, "<h1>oops</h1>");
    err.add_set_cookie("sticky=1; Expires=Tue, 01 Jan 2008 00:00:00 GMT");
    let mut browser = browser_with(vec![("/", err.clone()), ("/x", err)]);
    let mut picker = CookiePicker::new(CookiePickerConfig::default());
    train(&mut browser, &mut picker, &["/", "/x"], 2);
    assert!(browser.jar.iter().all(|c| !c.useful()));
}

#[test]
fn invalid_set_cookie_headers_ignored() {
    let mut r = Response::html(StatusCode::OK, "<p>page</p>");
    r.add_set_cookie("=novalue");
    r.add_set_cookie("no pair at all");
    r.add_set_cookie("bad name=x");
    r.add_set_cookie("good=1");
    r.add_set_cookie("foreign=1; Domain=evil.net");
    let mut browser = browser_with(vec![("/", r)]);
    browser.visit(&Url::parse("http://hostile.example/").unwrap()).unwrap();
    let names: Vec<&str> = browser.jar.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(names, ["good"], "only the valid, same-site cookie is stored");
}

#[test]
fn redirect_loop_terminates() {
    struct Loopy;
    impl Server for Loopy {
        fn handle(&self, req: &Request, _now: SimTime) -> Response {
            // / → /a → /b → /a → ... forever.
            match req.url.path() {
                "/a" => Response::redirect("/b"),
                _ => Response::redirect("/a"),
            }
        }
    }
    let mut net = SimNetwork::new(3);
    net.register("loop.example", Loopy);
    let mut browser = Browser::new(Arc::new(net), CookiePolicy::AcceptAll, 4);
    let view = browser.visit(&Url::parse("http://loop.example/").unwrap()).unwrap();
    // The browser gives up after its redirect budget and uses the last
    // response as the container.
    assert!(view.redirects <= 5);
    assert!(view.container_response.status.is_redirect());
}

#[test]
fn flapping_server_content_is_noise_only_if_leaf_level() {
    // A server that alternates its *whole layout* every request: this is
    // indistinguishable from a cookie effect (the burst pathology), so a
    // mark may happen — but nothing must panic and the mark must be of the
    // documented kind.
    struct Flapper;
    impl Server for Flapper {
        fn handle(&self, req: &Request, now: SimTime) -> Response {
            let layout_a = now.as_millis().is_multiple_of(2);
            let body = if layout_a {
                "<body><div><ul><li>a</li><li>b</li></ul></div><table><tr><td>x</td></tr></table></body>"
            } else {
                "<body><form><p><input></p></form><ol><li>z</li></ol></body>"
            };
            let mut r = Response::html(StatusCode::OK, body);
            if req.url.path() == "/" {
                r.add_set_cookie("sticky=1; Expires=Tue, 01 Jan 2008 00:00:00 GMT");
            }
            r
        }
    }
    let mut net = SimNetwork::new(5);
    net.register("flap.example", Flapper);
    let mut browser = Browser::new(Arc::new(net), CookiePolicy::AcceptAll, 6);
    let mut picker = CookiePicker::new(CookiePickerConfig::default());
    for _ in 0..6 {
        browser.visit_with(&Url::parse("http://flap.example/").unwrap(), &mut picker).unwrap();
        browser.think();
    }
    // No panic; records exist; any mark is a (documented) false positive.
    assert!(!picker.records().is_empty());
}

#[test]
fn site_without_cookies_needs_no_probes() {
    let mut browser = browser_with(vec![("/", Response::html(StatusCode::OK, "<p>clean</p>"))]);
    let mut picker = CookiePicker::new(CookiePickerConfig::default());
    for _ in 0..3 {
        browser.visit_with(&Url::parse("http://hostile.example/").unwrap(), &mut picker).unwrap();
        browser.think();
    }
    assert!(picker.records().is_empty(), "no cookies → no hidden requests");
    assert_eq!(browser.network().stats().requests, 3);
}
