//! The universe is a drop-in for the materialized populations: for any
//! seed, deriving a pinned host from `Universe` yields a `SiteSpec` whose
//! canonical JSON serialization is byte-identical to the spec produced by
//! the original `table1_population` / `table2_population` generators.
//!
//! This is the contract that lets cp-serve replace its eager
//! `HashMap<host, spec>` with lazy `(seed, host)` derivation without
//! perturbing a single result in `results/table{1,2}.json`.

use cp_runtime::json::ToJson;
use cp_webworld::{table1_population, table2_population, Universe, WorldKind};

#[test]
fn derived_specs_serialize_byte_identically_to_materialized_populations() {
    for seed in [1u64, 7, 42, 12345, 0xDEAD_BEEF] {
        let universe = Universe::table1(seed);
        let materialized: Vec<_> =
            table1_population(seed).into_iter().chain(table2_population(seed)).collect();
        assert_eq!(materialized.len(), 36, "30 table1 + 6 table2 specs");
        for spec in &materialized {
            let derived = universe
                .derive(&spec.domain)
                .unwrap_or_else(|| panic!("universe must pin {}", spec.domain));
            let want = spec.to_json().to_pretty();
            let got = derived.to_json().to_pretty();
            assert_eq!(got, want, "seed {seed}: {} diverged", spec.domain);
        }
    }
}

#[test]
fn uniform_worlds_pin_the_paper_populations_too() {
    // Scaling the world out to a million hosts must not disturb the paper
    // populations: the overlays still win over procedural derivation.
    let seed = 7u64;
    let universe = Universe::uniform(seed, 1_000_000);
    for spec in table1_population(seed).into_iter().chain(table2_population(seed)) {
        let derived = universe.derive(&spec.domain).expect("overlay resolves in any world");
        assert_eq!(derived.to_json().to_compact(), spec.to_json().to_compact());
    }
}

#[test]
fn uniform_derivation_is_stable_across_universe_instances() {
    // Same (seed, host) → same bytes, regardless of which Universe value
    // performed the derivation or what its enumerable size is.
    let a = Universe::uniform(99, 1_000_000);
    let b = Universe::new(99, WorldKind::Uniform(50));
    for index in [0u64, 1, 7, 49] {
        let host = cp_webworld::uniform_host(index);
        let from_a = a.derive(&host).unwrap().to_json().to_pretty();
        let from_b = b.derive(&host).unwrap().to_json().to_pretty();
        assert_eq!(from_a, from_b, "{host} diverged across instances");
    }
}
