//! Format compatibility for the machine-readable experiment dumps.
//!
//! The `results/*.json` fixtures are the interface EXPERIMENTS.md
//! bookkeeping reads; the writer in `cp-runtime` must keep emitting the
//! exact bytes that format uses (sorted keys, two-space indent, shortest
//! round-trip floats with a `.0` suffix on integral values). Parsing a
//! fixture and pretty-printing it back must therefore be the identity.

use std::path::Path;

use cp_runtime::json::Json;

fn roundtrip_fixture(name: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("results").join(name);
    let raw = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    let value = Json::parse(&raw).unwrap_or_else(|e| panic!("parsing {}: {e}", path.display()));
    assert_eq!(value.to_pretty(), raw, "{} did not round-trip byte-identically", name);
}

#[test]
fn table1_fixture_round_trips() {
    roundtrip_fixture("table1.json");
}

#[test]
fn table2_fixture_round_trips() {
    roundtrip_fixture("table2.json");
}

#[test]
fn table1_fixture_schema() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("results/table1.json");
    let raw = std::fs::read_to_string(path).unwrap();
    let rows = Json::parse(&raw).unwrap();
    let rows = rows.as_array().expect("top level is an array");
    assert_eq!(rows.len(), 30, "one row per site S1..S30");
    for row in rows {
        for key in [
            "site",
            "host",
            "persistent",
            "marked_useful",
            "real_useful",
            "avg_detection_ms",
            "avg_duration_ms",
            "probes",
        ] {
            assert!(row.get(key).is_some(), "row missing key {key}");
        }
    }
}
