//! Chaos property suite: seeded fault injection over the hidden-request
//! pipeline, checked against three invariants that hold for *arbitrary*
//! fault plans:
//!
//! 1. **Subset** — every cookie a faulted run marks useful is also marked
//!    by the fault-free oracle run (faults can delay marks, never invent
//!    them);
//! 2. **Monotone + no-mark-on-defer** — the `useful` flag only ever goes
//!    `false → true`, and a visit whose probe was inconclusive changes no
//!    marks;
//! 3. **Determinism** — the same plan over the same visit mix reproduces
//!    the run bit-for-bit, and a zero-rate plan is indistinguishable from
//!    no plan at all.

use std::sync::Arc;

use cookiepicker::browser::Browser;
use cookiepicker::cookies::CookiePolicy;
use cookiepicker::core::{CookiePicker, CookiePickerConfig};
use cookiepicker::net::{FaultPlan, FaultRates, SimNetwork, Url};
use cookiepicker::webworld::{table1_population, SiteServer, SiteSpec};
use cp_runtime::rng::{Rng, SeedableRng, StdRng};

/// Everything observable about one training run.
#[derive(Debug, PartialEq)]
struct Run {
    /// Sorted names of cookies marked useful.
    marks: Vec<String>,
    /// `(path, cookies_caused_difference)` for every decided probe.
    verdicts: Vec<(String, bool)>,
    /// Probes deferred as inconclusive.
    deferred: usize,
}

/// Trains one site for `pages` views, asserting the monotone and
/// no-mark-on-defer invariants after every single visit.
fn train_site(spec: &SiteSpec, plan: Option<FaultPlan>, pages: usize) -> Run {
    let domain = spec.domain.clone();
    let mut net = SimNetwork::new(spec.seed ^ 0xA5);
    net.register(domain.clone(), SiteServer::new(spec.clone()));
    if let Some(plan) = plan {
        net.set_fault_plan(plan);
    }
    let mut browser = Browser::new(Arc::new(net), CookiePolicy::AcceptAll, 3);
    let mut picker = CookiePicker::new(CookiePickerConfig::default());
    let base = Url::parse(&format!("http://{domain}/")).expect("valid url");
    let mut marked_so_far = 0usize;
    for i in 0..pages {
        let url = base.join(&format!("/page/{}", i % 6));
        let deferred_before = picker.inconclusive().len();
        browser.visit_with(&url, &mut picker).expect("container page loads");
        browser.think();
        let marks_now = browser.jar.iter().filter(|c| c.useful()).count();
        assert!(marks_now >= marked_so_far, "a useful mark was retracted on {domain}");
        if picker.inconclusive().len() > deferred_before {
            assert_eq!(marks_now, marked_so_far, "a deferred probe marked a cookie on {domain}");
        }
        marked_so_far = marks_now;
    }
    let mut marks: Vec<String> =
        browser.jar.iter().filter(|c| c.useful()).map(|c| c.name.clone()).collect();
    marks.sort();
    Run {
        marks,
        verdicts: picker
            .records()
            .iter()
            .map(|r| (r.path.clone(), r.decision.cookies_caused_difference))
            .collect(),
        deferred: picker.inconclusive().len(),
    }
}

/// Draws a fault plan with each rate uniform in `[0, 0.25]` — heavy enough
/// to fault most runs, light enough that training still makes progress.
fn arbitrary_rates(rng: &mut StdRng) -> FaultRates {
    FaultRates {
        drop: rng.gen::<f64>() * 0.25,
        reset: rng.gen::<f64>() * 0.25,
        http_5xx: rng.gen::<f64>() * 0.25,
        truncate: rng.gen::<f64>() * 0.25,
        extra_latency: rng.gen::<f64>() * 0.25,
        extra_latency_ms: 10_000 + rng.gen_range(0..120_000u64),
    }
}

#[test]
fn arbitrary_fault_plans_defer_but_never_invent_marks() {
    let specs = table1_population(7);
    for (site_index, spec) in specs.iter().take(4).enumerate() {
        let oracle = train_site(spec, None, 12);
        assert_eq!(oracle.deferred, 0, "fault-free run defers nothing");
        for plan_seed in [1u64, 42, 0xC0FFEE] {
            let mut rng = StdRng::seed_from_u64(plan_seed ^ (site_index as u64) << 17);
            let plan = FaultPlan::new(plan_seed).with_hidden(arbitrary_rates(&mut rng));
            let run = train_site(spec, Some(plan.clone()), 12);
            for mark in &run.marks {
                assert!(
                    oracle.marks.contains(mark),
                    "{}: plan seed {plan_seed} invented mark {mark:?} (oracle {:?})",
                    spec.domain,
                    oracle.marks,
                );
            }
            // Same plan, same visit mix → bit-identical rerun.
            let again = train_site(spec, Some(plan), 12);
            assert_eq!(run, again, "{}: plan seed {plan_seed} not deterministic", spec.domain);
        }
    }
}

#[test]
fn zero_rate_plan_is_bit_identical_to_no_plan() {
    // Installing the fault layer with all-zero rates must not perturb a
    // single RNG draw: the fault path derives its rolls from hashed
    // throwaway RNGs, never the latency stream.
    for spec in table1_population(7).iter().take(3) {
        let plain = train_site(spec, None, 10);
        let zero = train_site(spec, Some(FaultPlan::new(123)), 10);
        assert_eq!(plain, zero, "{}", spec.domain);
    }
}

#[test]
fn total_hidden_blackout_defers_every_probe() {
    // 100% drop on the hidden class only: container pages keep rendering,
    // every probe defers, nothing is ever marked, and training never
    // stabilizes on the missing evidence.
    let spec = &table1_population(7)[5];
    let rates = FaultRates { drop: 1.0, ..FaultRates::NONE };
    let run = train_site(spec, Some(FaultPlan::new(9).with_hidden(rates)), 8);
    assert!(run.verdicts.is_empty(), "no decided probes under a blackout");
    assert!(run.marks.is_empty());
    assert!(run.deferred > 0, "cookie-bearing views still attempt probes");
}

#[test]
fn fault_free_table1_stays_byte_identical_under_the_fault_layer() {
    // The end-to-end determinism fixture: the Table-1 experiment is pure in
    // its seed, and threading the fault-injection layer through the stack
    // must not have moved a byte of the fault-free outcome.
    let first = cp_bench::table1_outcome_json_pretty(7);
    let second = cp_bench::table1_outcome_json_pretty(7);
    assert_eq!(first, second);
}
