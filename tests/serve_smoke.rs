//! Smoke tests for cp-serve over real TCP: liveness, the classify
//! round-trip, error mapping (400/413), keep-alive, and graceful
//! shutdown draining.

use std::net::TcpStream;
use std::time::Duration;

use cookiepicker::serve::http::{write_request, write_response, HttpConn, HttpResponse, Limits};
use cookiepicker::serve::{start, ServeConfig, ServerHandle};
use cp_runtime::json::{FromJson, Json};

fn test_server() -> ServerHandle {
    start(ServeConfig {
        workers: 2,
        read_timeout: Duration::from_secs(2),
        write_timeout: Duration::from_secs(2),
        ..ServeConfig::default()
    })
    .expect("bind port 0")
}

fn connect(server: &ServerHandle) -> HttpConn<TcpStream> {
    let stream = TcpStream::connect(server.addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    HttpConn::new(stream, Limits::default())
}

fn one_shot(server: &ServerHandle, method: &str, target: &str, body: &[u8]) -> HttpResponse {
    let mut conn = connect(server);
    write_request(conn.stream_mut(), method, target, "127.0.0.1", body).unwrap();
    conn.read_response().expect("response")
}

#[test]
fn healthz_responds_ok() {
    let server = test_server();
    let resp = one_shot(&server, "GET", "/healthz", b"");
    assert_eq!(resp.status, 200);
    let json = Json::parse(&resp.body_string()).unwrap();
    assert_eq!(json.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(json.get("seed").and_then(Json::as_u64), Some(7));
}

#[test]
fn classify_round_trips_a_decision() {
    let server = test_server();
    let payload = Json::object()
        .set(
            "regular",
            "<html><body><h1>shop</h1><ul><li>wishlist a</li><li>wishlist b</li></ul>\
             <div><p>recommended for you</p></div></body></html>",
        )
        .set("hidden", "<html><body><h1>shop</h1><p>sign in</p></body></html>")
        .to_compact();
    let resp = one_shot(&server, "POST", "/v1/classify", payload.as_bytes());
    assert_eq!(resp.status, 200, "{}", resp.body_string());
    // The response is the shared `Decision` serialization.
    let decision =
        cookiepicker::core::Decision::from_json(&Json::parse(&resp.body_string()).unwrap())
            .expect("decision JSON");
    assert!(decision.cookies_caused_difference, "structurally different pages → useful");
    assert!(decision.tree_sim < 0.85);
}

#[test]
fn malformed_requests_get_400() {
    let server = test_server();
    // Invalid JSON body on a valid route.
    assert_eq!(one_shot(&server, "POST", "/v1/classify", b"{oops").status, 400);
    // Malformed HTTP: garbage request line.
    let mut conn = connect(&server);
    use std::io::Write as _;
    conn.stream_mut().write_all(b"NOT-HTTP\r\n\r\n").unwrap();
    let resp = conn.read_response().expect("a 400, not a hangup");
    assert_eq!(resp.status, 400);
    // Unsupported version.
    let mut conn = connect(&server);
    conn.stream_mut().write_all(b"GET / HTTP/2.0\r\n\r\n").unwrap();
    assert_eq!(conn.read_response().unwrap().status, 400);
}

#[test]
fn oversize_body_gets_413() {
    let server = test_server();
    let huge = vec![b'x'; 2 * 1024 * 1024]; // 2 MiB > 1 MiB default cap
    let mut conn = connect(&server);
    use std::io::Write as _;
    let head =
        format!("POST /v1/classify HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n", huge.len());
    conn.stream_mut().write_all(head.as_bytes()).unwrap();
    // The server rejects from the declared length alone — it never reads
    // (or buffers) the oversize payload.
    let resp = conn.read_response().expect("413 response");
    assert_eq!(resp.status, 413);
}

#[test]
fn keep_alive_serves_sequential_requests_on_one_connection() {
    let server = test_server();
    let mut conn = connect(&server);
    for i in 0..5 {
        write_request(conn.stream_mut(), "GET", "/healthz", "127.0.0.1", b"").unwrap();
        let resp = conn.read_response().expect("keep-alive response");
        assert_eq!(resp.status, 200, "request {i}");
        assert_eq!(resp.headers.get("connection"), Some("keep-alive"));
    }
    // Visit + summary on the same connection.
    write_request(
        conn.stream_mut(),
        "POST",
        "/v1/visit",
        "127.0.0.1",
        br#"{"host":"news1.example"}"#,
    )
    .unwrap();
    assert_eq!(conn.read_response().unwrap().status, 200);
    write_request(conn.stream_mut(), "GET", "/v1/sites/news1.example", "127.0.0.1", b"").unwrap();
    assert_eq!(conn.read_response().unwrap().status, 200);
}

#[test]
fn http10_connection_closes_after_response() {
    let server = test_server();
    let mut conn = connect(&server);
    use std::io::Write as _;
    conn.stream_mut().write_all(b"GET /healthz HTTP/1.0\r\n\r\n").unwrap();
    let resp = conn.read_response().unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.headers.get("connection"), Some("close"));
}

#[test]
fn graceful_shutdown_drains_and_joins() {
    let mut server = test_server();
    // Prime some state so shutdown has in-flight history to drain behind.
    for _ in 0..3 {
        assert_eq!(
            one_shot(&server, "POST", "/v1/visit", br#"{"host":"news1.example"}"#).status,
            200
        );
    }
    let resp = one_shot(&server, "POST", "/v1/shutdown", b"");
    assert_eq!(resp.status, 200);
    server.wait(); // must return promptly: acceptor woken, workers drained
                   // The port is released: a fresh bind on the same address succeeds.
    let addr = server.addr();
    drop(server);
    std::net::TcpListener::bind(addr).expect("port released after shutdown");
}

#[test]
fn durable_restart_replays_zero_records_and_keeps_marks() {
    // Satellite of the durability PR: a graceful shutdown flushes the WAL
    // and snapshots, so a clean restart replays *zero* records and serves
    // the identical mark set.
    let dir = std::env::temp_dir().join(format!("cp-smoke-durable-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let config = || ServeConfig {
        workers: 2,
        data_dir: Some(dir.clone()),
        read_timeout: Duration::from_secs(2),
        write_timeout: Duration::from_secs(2),
        ..ServeConfig::default()
    };
    let mut server = start(config()).expect("bind durable server");
    // Train every embedded site: the first visit collects its cookie jar,
    // two follow-ups probe with cookies attached so marks can land.
    let hosts: Vec<String> =
        cookiepicker::serve::EmbeddedWorld::new(7).hosts().iter().map(|h| h.to_string()).collect();
    for host in &hosts {
        let body = Json::object().set("host", host.as_str()).to_compact();
        let first = one_shot(&server, "POST", "/v1/visit", body.as_bytes());
        assert_eq!(first.status, 200, "{}", first.body_string());
        let json = Json::parse(&first.body_string()).unwrap();
        let jar: Vec<String> = json
            .get("set_cookies")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .filter_map(Json::as_str)
            .map(str::to_string)
            .collect();
        for i in 1..=2 {
            let body = Json::object()
                .set("host", host.as_str())
                .set("path", format!("/page/{i}"))
                .set("cookie", jar.join("; "))
                .to_compact();
            assert_eq!(one_shot(&server, "POST", "/v1/visit", body.as_bytes()).status, 200);
        }
    }
    let marks_before = one_shot(&server, "GET", "/v1/marks", b"").body_string();
    assert!(!marks_before.is_empty(), "training across all sites must mark something");
    assert_eq!(one_shot(&server, "POST", "/v1/shutdown", b"").status, 200);
    server.wait(); // flushes the WAL and writes the final snapshot
    drop(server);

    let server = start(config()).expect("restart on the same data dir");
    let metrics = one_shot(&server, "GET", "/metrics", b"").body_string();
    assert!(
        metrics.contains("cp_recovery_records_replayed 0"),
        "clean restart must replay zero records:\n{metrics}"
    );
    let health = Json::parse(&one_shot(&server, "GET", "/healthz", b"").body_string()).unwrap();
    assert_eq!(health.get("durable").and_then(Json::as_bool), Some(true));
    let marks_after = one_shot(&server, "GET", "/v1/marks", b"").body_string();
    assert_eq!(marks_after, marks_before, "marks survive a clean restart byte-for-byte");
    drop(server);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sites_listing_paginates_the_whole_world_exactly_once() {
    let server = start(ServeConfig {
        workers: 2,
        world: cookiepicker::serve::WorldKind::Uniform(137),
        read_timeout: Duration::from_secs(2),
        write_timeout: Duration::from_secs(2),
        ..ServeConfig::default()
    })
    .expect("bind uniform world");
    let mut seen: Vec<String> = Vec::new();
    let mut cursor: Option<String> = None;
    let mut pages = 0;
    loop {
        let target = match &cursor {
            None => "/v1/sites?limit=25".to_string(),
            Some(c) => format!("/v1/sites?limit=25&after={c}"),
        };
        let resp = one_shot(&server, "GET", &target, b"");
        assert_eq!(resp.status, 200, "{}", resp.body_string());
        let json = Json::parse(&resp.body_string()).unwrap();
        assert_eq!(json.get("total").and_then(Json::as_u64), Some(137));
        let hosts: Vec<String> = json
            .get("hosts")
            .and_then(Json::as_array)
            .expect("hosts array")
            .iter()
            .filter_map(Json::as_str)
            .map(str::to_string)
            .collect();
        assert_eq!(json.get("count").and_then(Json::as_u64), Some(hosts.len() as u64));
        seen.extend(hosts);
        pages += 1;
        match json.get("next").and_then(Json::as_str) {
            Some(next) => cursor = Some(next.to_string()),
            None => break,
        }
    }
    assert_eq!(pages, 6, "137 hosts in pages of 25");
    assert_eq!(seen.len(), 137, "the walk covers the whole world");
    let mut dedup = seen.clone();
    dedup.sort();
    dedup.dedup();
    assert_eq!(dedup.len(), 137, "no host listed twice");
    // A listed host is actually servable.
    let body = Json::object().set("host", seen[0].as_str()).to_compact();
    assert_eq!(one_shot(&server, "POST", "/v1/visit", body.as_bytes()).status, 200);
    // Unknown cursors and malformed limits are 400s, not silent empties.
    assert_eq!(one_shot(&server, "GET", "/v1/sites?after=nope.example", b"").status, 400);
    assert_eq!(one_shot(&server, "GET", "/v1/sites?limit=0", b"").status, 400);
    assert_eq!(one_shot(&server, "GET", "/v1/sites?limit=many", b"").status, 400);
    assert_eq!(one_shot(&server, "GET", "/v1/sites?page=2", b"").status, 400);
}

#[test]
fn sites_listing_defaults_cover_the_table1_world() {
    let server = test_server();
    let resp = one_shot(&server, "GET", "/v1/sites", b"");
    assert_eq!(resp.status, 200);
    let json = Json::parse(&resp.body_string()).unwrap();
    // The Table-1 population (30 hosts) fits in the default page of 50.
    assert_eq!(json.get("total").and_then(Json::as_u64), Some(30));
    assert_eq!(json.get("count").and_then(Json::as_u64), Some(30));
    assert_eq!(json.get("next"), Some(&Json::Null));
    let hosts: Vec<&str> = json
        .get("hosts")
        .and_then(Json::as_array)
        .expect("hosts array")
        .iter()
        .filter_map(Json::as_str)
        .collect();
    assert!(hosts.windows(2).all(|w| w[0] < w[1]), "table1 listing is sorted");
    assert!(hosts.contains(&"news1.example"));
}

#[test]
fn full_queue_sheds_load_with_503() {
    // 1 worker, 1-slot queue: occupy the worker, fill the queue, then watch
    // the next connection get a 503 instead of queueing unboundedly.
    let server = start(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        read_timeout: Duration::from_millis(500),
        write_timeout: Duration::from_millis(500),
        ..ServeConfig::default()
    })
    .unwrap();
    // Occupy the worker with an idle keep-alive connection (it blocks in
    // read_request until the read timeout).
    let _busy = connect(&server);
    std::thread::sleep(Duration::from_millis(50));
    let _queued = connect(&server); // fills the single queue slot
    std::thread::sleep(Duration::from_millis(50));
    let mut shed = connect(&server);
    let resp = shed.read_response().expect("shed connections get an inline 503");
    assert_eq!(resp.status, 503);
}

/// Polls `server`'s close-cause counter until it reaches `want` or a 5 s
/// deadline passes (the worker observes the close asynchronously).
fn await_close_cause(server: &ServerHandle, cause: &str, want: u64) {
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let got = server.metrics().conn_closed_count(cause);
        if got >= want {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "cp_conn_closed_total{{cause=\"{cause}\"}} stuck at {got}, wanted {want}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn slowloris_stall_hits_read_timeout_and_closes_clean() {
    let server = start(ServeConfig {
        workers: 2,
        read_timeout: Duration::from_millis(300),
        write_timeout: Duration::from_millis(300),
        ..ServeConfig::default()
    })
    .unwrap();
    let mut conn = connect(&server);
    use std::io::{Read as _, Write as _};
    // A slowloris client: part of a request head, then silence.
    conn.stream_mut().write_all(b"GET /healthz HTT").unwrap();
    // The worker gives up after read_timeout and closes without writing a
    // response: the client's next read sees EOF (or a reset), never bytes.
    conn.stream_mut().set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut buf = [0u8; 64];
    let n = conn.stream_mut().read(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "a stalled head gets no response bytes, just a close");
    await_close_cause(&server, "timeout", 1);
    // The stall consumed no routing: no request was ever recorded.
    let text = server.metrics().render_prometheus();
    assert!(text.contains("cp_requests_total{endpoint=\"healthz\"} 0"), "{text}");
}

#[test]
fn truncated_body_stall_times_out_and_is_accounted() {
    let server = start(ServeConfig {
        workers: 2,
        read_timeout: Duration::from_millis(300),
        write_timeout: Duration::from_millis(300),
        ..ServeConfig::default()
    })
    .unwrap();
    let mut conn = connect(&server);
    use std::io::{Read as _, Write as _};
    // A complete head declaring 100 body bytes, but only a fragment sent.
    conn.stream_mut()
        .write_all(
            b"POST /v1/classify HTTP/1.1\r\nHost: t\r\nContent-Length: 100\r\n\r\n{\"regular\"",
        )
        .unwrap();
    conn.stream_mut().set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut buf = [0u8; 64];
    let n = conn.stream_mut().read(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "a half-sent body gets no response, just a close");
    await_close_cause(&server, "timeout", 1);
    // The handler never ran: classify counted no request and no response
    // class was recorded for it.
    let text = server.metrics().render_prometheus();
    assert!(text.contains("cp_requests_total{endpoint=\"classify\"} 0"), "{text}");
}

#[test]
fn close_cause_metrics_cover_clean_and_shed_paths() {
    // HTTP/1.0 → served then closed with cause "client".
    let server = test_server();
    let mut conn = connect(&server);
    use std::io::Write as _;
    conn.stream_mut().write_all(b"GET /healthz HTTP/1.0\r\n\r\n").unwrap();
    assert_eq!(conn.read_response().unwrap().status, 200);
    await_close_cause(&server, "client", 1);

    // Overload → the acceptor's inline 503 records cause "shed".
    let server = start(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        read_timeout: Duration::from_millis(500),
        write_timeout: Duration::from_millis(500),
        ..ServeConfig::default()
    })
    .unwrap();
    let _busy = connect(&server);
    std::thread::sleep(Duration::from_millis(50));
    let _queued = connect(&server);
    std::thread::sleep(Duration::from_millis(50));
    let mut shed = connect(&server);
    assert_eq!(shed.read_response().unwrap().status, 503);
    assert_eq!(server.metrics().conn_closed_count("shed"), 1);
}

#[test]
fn response_writer_is_parseable_by_own_client() {
    // Round-trip sanity for the shared wire layer used by both sides.
    let mut wire = Vec::new();
    write_response(&mut wire, 200, "OK", "application/json", br#"{"ok":true}"#, true).unwrap();
    let mut conn = HttpConn::new(std::io::Cursor::new(wire), Limits::default());
    assert_eq!(conn.read_response().unwrap().status, 200);
}
