//! Reproducibility guarantee: the experiments are pure functions of their
//! seed. Running Table 1 twice with the same seed must produce
//! byte-identical outcome JSON even though the sites are trained on worker
//! threads (the fan-out returns results in site order regardless of
//! scheduling). The outcome view excludes the two wall-clock columns,
//! which are measured — not simulated — time; everything else (cookie
//! counts, marks, probe counts) must not move between runs.

use cp_bench::table1_outcome_json_pretty;

#[test]
fn table1_same_seed_runs_are_byte_identical() {
    let first = table1_outcome_json_pretty(7);
    let second = table1_outcome_json_pretty(7);
    assert_eq!(first, second);
}

#[test]
fn table1_seed_changes_the_outcome() {
    // The site population itself is seed-derived, so at minimum the
    // hostnames differ between seeds.
    assert_ne!(table1_outcome_json_pretty(1), table1_outcome_json_pretty(2));
}
