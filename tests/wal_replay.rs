//! Seeded property tests for WAL replay and durable-store recovery.
//!
//! The invariants pinned here are the contract `scripts/crash.sh` leans
//! on: recovery never panics on damaged logs, always restores a *prefix*
//! of the acked event stream (per shard), never invents state, and is
//! idempotent — recovering twice yields the same store.

use std::path::PathBuf;
use std::sync::Arc;

use cp_runtime::rng::{Rng, SeedableRng, StdRng};
use cp_serve::metrics::ServiceMetrics;
use cp_serve::storage::StorageFaults;
use cp_serve::store::ShardedStore;
use cp_serve::wal::{read_log, EventKind, VisitEvent};
use cp_serve::{DurabilityConfig, FsyncPolicy};

const HOSTS: [&str; 5] =
    ["alpha.example", "beta.example", "gamma.example", "delta.example", "epsilon.example"];

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cp-wal-replay-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A random but valid event: `tag` folded into the cookie names keeps the
/// streams of different test iterations distinguishable.
fn random_event(rng: &mut StdRng, tag: u64) -> VisitEvent {
    let host = HOSTS[rng.gen_range(0..HOSTS.len())].to_string();
    let observed: Vec<String> =
        (0..rng.gen_range(0..4u64)).map(|_| format!("c{}-{tag}", rng.gen_range(0..6u64))).collect();
    let kind = match rng.gen_range(0..3u64) {
        0 => EventKind::Observe,
        1 => EventKind::Defer,
        _ => EventKind::Probe {
            group: observed.clone(),
            marking: rng.gen_range(0..2u64) == 1,
            detection_micros: rng.gen_range(0..10_000),
            duration_ms: rng.gen_range(0..10_000) as f64 / 1_000.0,
        },
    };
    VisitEvent { host, observed, kind }
}

/// One line per host capturing every recovered field — two stores with
/// equal fingerprints hold identical training state.
fn fingerprint(store: &ShardedStore) -> Vec<String> {
    HOSTS
        .iter()
        .map(|host| {
            store
                .read_entry(host, |e| {
                    let site = e.forcum.site(host).map(|s| {
                        (
                            s.pages_seen,
                            s.stable_streak,
                            s.hidden_requests,
                            s.marks,
                            s.deferrals,
                            s.known_cookies_sorted().join(","),
                        )
                    });
                    format!(
                        "{host} marked={:?} probes={} marking={} deferred={} micros={} \
                         dur={} active={} site={site:?}",
                        e.marked,
                        e.probes,
                        e.marking_probes,
                        e.deferred_probes,
                        e.detection_micros_total,
                        e.duration_ms_total.to_bits(),
                        e.forcum.is_active(host),
                    )
                })
                .unwrap_or_else(|| format!("{host} absent"))
        })
        .collect()
}

fn open(
    config: &DurabilityConfig,
    shards: usize,
) -> (ShardedStore, cp_serve::RecoveryStats, Arc<ServiceMetrics>) {
    let metrics = Arc::new(ServiceMetrics::new());
    let (store, stats) =
        ShardedStore::open(shards, 5, Some(config.clone()), Arc::clone(&metrics)).unwrap();
    (store, stats, metrics)
}

fn journal(store: &ShardedStore, event: &VisitEvent) -> std::io::Result<()> {
    store.transact(&event.host, |_| (Some(event.clone()), ()), |_, _, ()| ())
}

#[test]
fn recovery_equals_direct_application_for_random_streams() {
    for seed in [1u64, 7, 0xDEAD] {
        let dir = tmp_dir(&format!("direct-{seed}"));
        let config = DurabilityConfig::new(dir.clone());
        let (store, _, _) = open(&config, 4);
        let shadow = ShardedStore::new(4, 5);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..150 {
            let event = random_event(&mut rng, seed);
            journal(&store, &event).unwrap();
            shadow.with_entry(&event.host.clone(), |e| e.apply(&event));
        }
        let live = fingerprint(&store);
        assert_eq!(live, fingerprint(&shadow), "seed {seed}: live store diverged from shadow");
        // Crash (drop without checkpoint) and recover: identical state.
        drop(store);
        let (recovered, stats, _) = open(&config, 4);
        assert_eq!(stats.records_replayed, 150);
        assert_eq!(fingerprint(&recovered), live, "seed {seed}: replay diverged");
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn arbitrary_truncation_recovers_a_prefix_without_panicking() {
    let seed = 0x72C;
    let dir = tmp_dir("trunc");
    let config = DurabilityConfig::new(dir.clone());
    // Single shard so the whole stream lives in one log and "prefix of
    // the acked stream" is directly checkable.
    let (store, _, _) = open(&config, 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut acked = Vec::new();
    for _ in 0..60 {
        let event = random_event(&mut rng, seed);
        journal(&store, &event).unwrap();
        acked.push(event);
    }
    drop(store);
    let wal = cp_serve::wal::wal_path(&dir, 0);
    let bytes = std::fs::read(&wal).unwrap();
    // Cut the log at a spread of arbitrary byte offsets (every 7th byte
    // keeps the loop fast while still hitting header, length-field,
    // checksum, and payload positions).
    for cut in (0..=bytes.len()).rev().step_by(7) {
        std::fs::write(&wal, &bytes[..cut]).unwrap();
        let contents = read_log(&wal).unwrap();
        assert!(
            contents.events.len() <= acked.len()
                && contents.events[..] == acked[..contents.events.len()],
            "cut at {cut}: recovered events are not a prefix of the acked stream"
        );
        // The full store-level recovery accepts the damaged log too.
        let (recovered, stats, _) = open(&config, 1);
        assert_eq!(stats.records_replayed, contents.events.len() as u64);
        // Recovery truncated the torn tail: a second recovery replays the
        // same records and reports the tail already clean.
        drop(recovered);
        let (_, again, _) = open(&config, 1);
        assert_eq!(again.records_replayed, stats.records_replayed);
        assert_eq!(again.torn_tail_bytes, 0, "first recovery must discard the torn tail");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_bytes_never_panic_and_never_invent_events() {
    let seed = 0xBADC0DE;
    let dir = tmp_dir("corrupt");
    let config = DurabilityConfig::new(dir.clone());
    let (store, _, _) = open(&config, 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut acked = Vec::new();
    for _ in 0..40 {
        let event = random_event(&mut rng, seed);
        journal(&store, &event).unwrap();
        acked.push(event);
    }
    drop(store);
    let wal = cp_serve::wal::wal_path(&dir, 0);
    let bytes = std::fs::read(&wal).unwrap();
    for _ in 0..50 {
        let mut damaged = bytes.clone();
        let pos = rng.gen_range(0..damaged.len() as u64) as usize;
        damaged[pos] ^= 1 << rng.gen_range(0..8u64);
        std::fs::write(&wal, &damaged).unwrap();
        let contents = read_log(&wal).unwrap();
        // A flipped bit can only shorten what replays — every surviving
        // event must be one we acked, in order. (A flip inside the
        // header's generation field changes no event.)
        assert!(
            contents.events.len() <= acked.len()
                && contents.events[..] == acked[..contents.events.len()],
            "bit flip at {pos}: recovered events are not a prefix of the acked stream"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn storage_faults_recover_exactly_the_acked_transactions() {
    for seed in [3u64, 11, 77] {
        let dir = tmp_dir(&format!("faulted-{seed}"));
        let mut config = DurabilityConfig::new(dir.clone());
        config.fsync = FsyncPolicy::Always; // exercise the fsync fault arm too
        config.faults = Some(StorageFaults::uniform(seed, 0.3));
        let (store, _, metrics) = open(&config, 4);
        let shadow = ShardedStore::new(4, 5);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xACC);
        let mut acked = 0u64;
        let mut rejected = 0u64;
        for _ in 0..200 {
            let event = random_event(&mut rng, seed);
            match journal(&store, &event) {
                Ok(()) => {
                    acked += 1;
                    shadow.with_entry(&event.host.clone(), |e| e.apply(&event));
                }
                Err(_) => rejected += 1,
            }
        }
        assert!(metrics.wal_fault_total() > 0, "seed {seed}: 30% fault rate must fire");
        let live = fingerprint(&store);
        assert_eq!(live, fingerprint(&shadow), "seed {seed}: failed appends must not apply");
        drop(store);
        // Recover WITHOUT faults (reads are never faulted anyway): the
        // acked transactions — all of them, only them — come back.
        let clean = DurabilityConfig::new(dir.clone());
        let (recovered, stats, _) = open(&clean, 4);
        assert_eq!(
            stats.records_replayed, acked,
            "seed {seed}: acked={acked} rejected={rejected} — replay must match acks exactly"
        );
        assert_eq!(fingerprint(&recovered), live, "seed {seed}: recovery diverged");
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn checkpoint_then_tail_replay_is_seamless() {
    // Snapshot + WAL-tail recovery must equal pure-WAL recovery: fold a
    // checkpoint in at an arbitrary point and compare fingerprints.
    for seed in [5u64, 21] {
        let dir = tmp_dir(&format!("ckpt-{seed}"));
        let config = DurabilityConfig::new(dir.clone());
        let (store, _, _) = open(&config, 4);
        let shadow = ShardedStore::new(4, 5);
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..120 {
            if i == 70 {
                store.checkpoint().unwrap();
            }
            let event = random_event(&mut rng, seed);
            journal(&store, &event).unwrap();
            shadow.with_entry(&event.host.clone(), |e| e.apply(&event));
        }
        drop(store);
        let (recovered, stats, _) = open(&config, 4);
        assert_eq!(stats.snapshots_loaded, 4, "every shard snapshotted at the checkpoint");
        assert_eq!(stats.records_replayed, 50, "only the post-checkpoint tail replays");
        assert_eq!(fingerprint(&recovered), fingerprint(&shadow), "seed {seed}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
