#!/usr/bin/env sh
# Tier-1 verification: the workspace must build and test fully offline.
#
# The build graph is hermetic by design (no registry dependencies — see
# DESIGN.md §6), so this runs with the network explicitly disabled to catch
# any accidental reintroduction of a crates.io dependency.
set -eu

cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

cargo fmt --check
cargo build --release --workspace
cargo test -q --workspace

# Serve smoke: a short multi-connection loadgen run against the readiness
# loop — gates on zero 5xx and an exact client/server counter match.
SMOKE=1 ./scripts/bench_serve.sh

# Detection bench smoke: times nothing meaningful in CI but proves the
# compiled pipeline still reproduces the reference bit-for-bit (the
# binary gates on equivalence before any timing).
SMOKE=1 ./scripts/bench_detect.sh

# World smoke: a lazily derived 100k-host world under Zipf load — gates
# on zero 5xx, bounded RSS, and observed on-demand derivations.
SMOKE=1 ./scripts/bench_world.sh

# Chaos smoke: fault-injected serve run vs a fault-free oracle — gates on
# zero invented marks, zero panics, and a clean transport tally.
SMOKE=1 ./scripts/chaos.sh

# Crash smoke: kill -9 a durable server mid-load under injected storage
# faults — gates on no acked mark lost, zero invented marks, deterministic
# recovery, and a replay-free clean restart.
SMOKE=1 ./scripts/crash.sh

# Crawl smoke: the autonomous frontier scheduler converges the Table-1
# world to the paper's 103/7/3 with zero loadgen — gates on bit-identical
# same-seed runs, the visits/sec floor at flat RSS, and zero panics.
SMOKE=1 ./scripts/bench_crawl.sh

# Cluster smoke: kill -9 the replicated primary mid-load behind the
# router, then the self-healing gates — a chaos-proxy partition that must
# heal by backlog resync with no acked mark lost, a killed-and-restarted
# follower that must reconverge hands-off, and a stalled follower that
# must be demoted within the ack deadline instead of blocking writes.
SMOKE=1 ./scripts/cluster.sh

echo "verify: fmt + build + tests + serve smoke + detect smoke + world smoke + chaos smoke + crash smoke + crawl smoke + cluster smoke passed offline"
