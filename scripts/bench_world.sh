#!/usr/bin/env sh
# World-scaling benchmark: start cp-serve on a lazily derived uniform
# world, drive it with Zipf-distributed host sampling, and record the
# scaling report (derive p50/p99, RSS ceiling, throughput vs the
# committed BENCH_serve baseline) to BENCH_world.json.
#
# Gates:
#   * the million-host server answers the Zipf mix with zero 5xx;
#   * resident memory stays bounded (O(site cache), not O(world));
#   * table1-world throughput stays >= 0.8x the BENCH_serve baseline.
#
# Usage: scripts/bench_world.sh [requests] [threads] [seed]
#   SMOKE=1 scripts/bench_world.sh   # tiny CI profile: 100k hosts, 2k
#                                    # requests, report goes to /tmp
set -eu

cd "$(dirname "$0")/.."

REQUESTS="${1:-20000}"
THREADS="${2:-4}"
SEED="${3:-7}"
HOSTS=1000000
ZIPF=1.1
# A materialized million-site world would need gigabytes; the lazy
# universe must stay within a flat cache-sized budget.
RSS_CEILING_KB=262144
OUT="BENCH_world.json"
if [ "${SMOKE:-0}" = "1" ]; then
    REQUESTS=2000
    HOSTS=100000
    OUT="$(mktemp /tmp/bench_world.XXXXXX.json)"
fi

export CARGO_NET_OFFLINE=true
cargo build --release --quiet
BIN=target/release/cookiepicker

SERVE_LOG="$(mktemp /tmp/cp_world.XXXXXX.log)"
SERVE_PID=""
trap '[ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true' EXIT INT TERM

# Starts the server with the given --world and scrapes the bound port
# from the (flushed) banner into $PORT.
start_server() {
    : >"$SERVE_LOG"
    "$BIN" serve --port 0 --seed "$SEED" --workers "$THREADS" --world "$1" >"$SERVE_LOG" &
    SERVE_PID=$!
    PORT=""
    for _ in $(seq 1 50); do
        PORT="$(sed -n 's/.*listening on http:\/\/[0-9.]*:\([0-9]*\).*/\1/p' "$SERVE_LOG")"
        [ -n "$PORT" ] && break
        sleep 0.1
    done
    [ -n "$PORT" ] || { echo "bench_world: server did not start"; cat "$SERVE_LOG"; exit 1; }
}

stop_server() {
    "$BIN" get --port "$PORT" --post /v1/shutdown >/dev/null 2>&1 || true
    wait "$SERVE_PID" 2>/dev/null || true
    SERVE_PID=""
}

rss_kb() {
    if [ -r "/proc/$SERVE_PID/status" ]; then
        awk '/^VmRSS:/ {print $2}' "/proc/$SERVE_PID/status"
    else
        echo 0
    fi
}

# ---- Phase 1: Zipf load against the lazily derived uniform world ------
start_server "uniform:$HOSTS"
RSS_START_KB="$(rss_kb)"

ZIPF_REPORT="$(mktemp /tmp/cp_world_zipf.XXXXXX.json)"
"$BIN" loadgen --port "$PORT" --threads "$THREADS" --requests "$REQUESTS" \
    --seed "$SEED" --hosts "$HOSTS" --zipf "$ZIPF" --out "$ZIPF_REPORT"

RSS_END_KB="$(rss_kb)"
METRICS="$(mktemp /tmp/cp_world_metrics.XXXXXX.txt)"
"$BIN" get --port "$PORT" /metrics >"$METRICS"
stop_server

grep -q '"status_5xx": 0' "$ZIPF_REPORT" \
    || { echo "bench_world: 5xx under Zipf load"; cat "$ZIPF_REPORT"; exit 1; }
grep -q '"transport_errors": 0' "$ZIPF_REPORT" \
    || { echo "bench_world: transport errors"; cat "$ZIPF_REPORT"; exit 1; }

# Derivation latency percentiles from the cp_site_derive_micros histogram
# (upper bucket bounds, so p50/p99 are conservative ceilings).
DERIVE_STATS="$(awk '
    /^cp_site_derive_micros_bucket/ {
        le = $0; sub(/.*le="/, "", le); sub(/".*/, "", le)
        n = $2; i++; bound[i] = le; cum[i] = n
    }
    /^cp_site_derive_micros_count/ { count = $2 }
    END {
        if (count + 0 == 0) { print "0 0 0"; exit }
        for (j = 1; j <= i; j++) {
            if (!p50 && cum[j] >= 0.5 * count) p50 = bound[j]
            if (!p99 && cum[j] >= 0.99 * count) p99 = bound[j]
        }
        # -1 = beyond the largest finite bucket (keeps the JSON numeric).
        if (p50 == "+Inf") p50 = -1
        if (p99 == "+Inf") p99 = -1
        print p50, p99, count
    }' "$METRICS")"
DERIVE_P50="$(echo "$DERIVE_STATS" | cut -d' ' -f1)"
DERIVE_P99="$(echo "$DERIVE_STATS" | cut -d' ' -f2)"
DERIVE_COUNT="$(echo "$DERIVE_STATS" | cut -d' ' -f3)"
[ "$DERIVE_COUNT" -gt 0 ] || { echo "bench_world: no derivations observed"; exit 1; }

if [ "$RSS_END_KB" -gt 0 ] && [ "$RSS_END_KB" -gt "$RSS_CEILING_KB" ]; then
    echo "bench_world: RSS $RSS_END_KB kB exceeds ceiling $RSS_CEILING_KB kB"
    exit 1
fi

ZIPF_RPS="$(sed -n 's/.*"throughput_rps": \([0-9.]*\).*/\1/p' "$ZIPF_REPORT")"

# ---- Phase 2: table1 world throughput vs the BENCH_serve baseline -----
start_server "table1"
T1_REPORT="$(mktemp /tmp/cp_world_t1.XXXXXX.json)"
"$BIN" loadgen --port "$PORT" --threads "$THREADS" --requests "$REQUESTS" \
    --seed "$SEED" --out "$T1_REPORT"
stop_server
trap - EXIT INT TERM

grep -q '"status_5xx": 0' "$T1_REPORT" \
    || { echo "bench_world: 5xx on table1 world"; cat "$T1_REPORT"; exit 1; }
grep -q '"counters_match": true' "$T1_REPORT" \
    || { echo "bench_world: counter mismatch on table1 world"; cat "$T1_REPORT"; exit 1; }

T1_RPS="$(sed -n 's/.*"throughput_rps": \([0-9.]*\).*/\1/p' "$T1_REPORT")"
BASELINE_RPS=""
[ -f BENCH_serve.json ] \
    && BASELINE_RPS="$(sed -n 's/.*"throughput_rps": \([0-9.]*\).*/\1/p' BENCH_serve.json)"

# The lazy universe must not tax the hot path: only the full profile
# gates the ratio (the smoke profile is too short to time anything).
if [ -n "$BASELINE_RPS" ] && [ "${SMOKE:-0}" != "1" ]; then
    awk -v new="$T1_RPS" -v old="$BASELINE_RPS" 'BEGIN {
        if (new + 0 < 0.8 * (old + 0)) {
            printf "bench_world: table1 throughput regressed: %s rps vs baseline %s rps\n", new, old
            exit 1
        }
        printf "bench_world: table1 throughput %s rps (baseline %s rps)\n", new, old
    }'
fi

cat >"$OUT" <<JSON
{
  "world_hosts": $HOSTS,
  "zipf_exponent": $ZIPF,
  "requests": $REQUESTS,
  "threads": $THREADS,
  "seed": $SEED,
  "derive_p50_micros_le": $DERIVE_P50,
  "derive_p99_micros_le": $DERIVE_P99,
  "derive_count": $DERIVE_COUNT,
  "rss_start_kb": $RSS_START_KB,
  "rss_end_kb": $RSS_END_KB,
  "rss_ceiling_kb": $RSS_CEILING_KB,
  "zipf_throughput_rps": ${ZIPF_RPS:-0},
  "table1_throughput_rps": ${T1_RPS:-0},
  "bench_serve_baseline_rps": ${BASELINE_RPS:-0}
}
JSON

rm -f "$ZIPF_REPORT" "$T1_REPORT" "$METRICS" "$SERVE_LOG"
echo "bench_world: ${HOSTS}-host world, derive p50<=${DERIVE_P50}us p99<=${DERIVE_P99}us, RSS ${RSS_END_KB} kB"
echo "bench_world: report written to $OUT"
