#!/usr/bin/env sh
# Service benchmark: start cp-serve, drive it with the seeded load
# generator over real TCP, and record the baseline report (throughput +
# p50/p95/p99 + verdict cross-check) to BENCH_serve.json.
#
# Usage: scripts/bench_serve.sh [requests] [threads] [seed] [connections]
#   SMOKE=1 scripts/bench_serve.sh    # tiny CI profile (~5s): 2k requests,
#                                     # report goes to /tmp, repo untouched
set -eu

cd "$(dirname "$0")/.."

REQUESTS="${1:-100000}"
THREADS="${2:-4}"
SEED="${3:-7}"
CONNECTIONS="${4:-16}"
OUT="BENCH_serve.json"
if [ "${SMOKE:-0}" = "1" ]; then
    REQUESTS=2000
    OUT="$(mktemp /tmp/bench_serve.XXXXXX.json)"
fi

# In the full profile the loadgen overwrites the committed report, so
# capture the previous throughput first — it becomes the regression
# baseline checked after the run.
PREV_RPS=""
if [ "$OUT" = "BENCH_serve.json" ] && [ -f "$OUT" ]; then
    PREV_RPS="$(sed -n 's/.*"throughput_rps": \([0-9.]*\).*/\1/p' "$OUT")"
fi

export CARGO_NET_OFFLINE=true
cargo build --release --quiet
BIN=target/release/cookiepicker

SERVE_LOG="$(mktemp /tmp/cp_serve.XXXXXX.log)"
"$BIN" serve --port 0 --seed "$SEED" --workers "$THREADS" >"$SERVE_LOG" &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT INT TERM

# The serve banner prints (and flushes) the bound address; poll for it.
PORT=""
for _ in $(seq 1 50); do
    PORT="$(sed -n 's/.*listening on http:\/\/[0-9.]*:\([0-9]*\).*/\1/p' "$SERVE_LOG")"
    [ -n "$PORT" ] && break
    sleep 0.1
done
[ -n "$PORT" ] || { echo "bench_serve: server did not start"; cat "$SERVE_LOG"; exit 1; }

"$BIN" loadgen --port "$PORT" --threads "$THREADS" --connections "$CONNECTIONS" \
    --requests "$REQUESTS" --seed "$SEED" --out "$OUT"

# Graceful stop when nc is available: the shutdown endpoint drains
# in-flight work and the serve process exits on its own. Otherwise the
# report is already written, so a plain kill is fine.
if command -v nc >/dev/null 2>&1; then
    printf 'POST /v1/shutdown HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n' \
        | nc 127.0.0.1 "$PORT" >/dev/null 2>&1 || true
    wait "$SERVE_PID" 2>/dev/null || true
else
    kill "$SERVE_PID" 2>/dev/null || true
    wait "$SERVE_PID" 2>/dev/null || true
fi
trap - EXIT INT TERM

# The run is only a valid baseline if nothing 5xx'd and the server's
# verdict counters matched the client tally.
grep -q '"status_5xx": 0' "$OUT" || { echo "bench_serve: 5xx responses"; cat "$OUT"; exit 1; }
grep -q '"counters_match": true' "$OUT" || { echo "bench_serve: counter mismatch"; cat "$OUT"; exit 1; }

# Throughput must not fall off a cliff versus the committed report. The
# 0.8 factor absorbs machine-to-machine variance while still catching a
# real regression in the serve or detection path.
if [ -n "$PREV_RPS" ]; then
    NEW_RPS="$(sed -n 's/.*"throughput_rps": \([0-9.]*\).*/\1/p' "$OUT")"
    awk -v new="$NEW_RPS" -v old="$PREV_RPS" 'BEGIN {
        if (new + 0 < 0.8 * (old + 0)) {
            printf "bench_serve: throughput regressed: %s rps vs committed %s rps\n", new, old
            exit 1
        }
        printf "bench_serve: throughput %s rps (committed baseline %s rps)\n", new, old
    }'
fi

echo "bench_serve: report written to $OUT"
