#!/usr/bin/env sh
# Kill-recovery harness: prove the durable store survives `kill -9` under
# injected storage faults, losing nothing it acked and inventing nothing.
#
# Phases and gates:
#
#   1. oracle     — an in-memory server takes the full seeded load; its
#                   mark set is the reference and its rps the baseline.
#   2. durable    — a `--data-dir --fsync batch` server takes the *same*
#                   load: marks must be byte-identical to the oracle, the
#                   WAL must have journaled records, and a clean restart
#                   must replay zero records (the shutdown snapshot covers
#                   the log). Full profile only: durable rps must hold
#                   0.7x the in-memory baseline.
#   3. crash      — a fresh durable server with deterministic storage
#                   faults (short writes, torn records, failed fsync,
#                   ENOSPC) is killed with SIGKILL mid-load; faults must
#                   actually have fired before the kill.
#   4. recover    — a restart on the crashed dir must replay a non-empty
#                   WAL tail and serve a mark set with no acked mark lost
#                   (client acks are a lower bound: every response the
#                   load generator saw was written after the WAL append)
#                   and zero marks invented vs the oracle.
#   5. replay     — recovering a byte-for-byte copy of the crashed dir
#                   yields the identical mark set (recovery is a pure
#                   function of the bytes on disk), and a clean restart
#                   after recovery replays zero records.
#
# Usage: scripts/crash.sh [requests] [threads] [seed] [fault_rate]
#   SMOKE=1 scripts/crash.sh    # tiny CI profile (~15s): 2k requests,
#                               # report goes to /tmp, repo untouched,
#                               # throughput gate skipped (too noisy)
set -eu

cd "$(dirname "$0")/.."

REQUESTS="${1:-20000}"
THREADS="${2:-4}"
SEED="${3:-7}"
RATE="${4:-0.2}"
OUT="BENCH_crash.json"
GATE_RPS=1
if [ "${SMOKE:-0}" = "1" ]; then
    REQUESTS=2000
    OUT="$(mktemp /tmp/bench_crash.XXXXXX.json)"
    GATE_RPS=0
fi

export CARGO_NET_OFFLINE=true
cargo build --release --quiet
BIN=target/release/cookiepicker

WORK="$(mktemp -d /tmp/cp_crash.XXXXXX)"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

# The serve banner prints (and flushes) the bound address; poll for it.
# Sets PORT, fails the run if the server never comes up.
await_port() {
    PORT=""
    for _ in $(seq 1 50); do
        PORT="$(sed -n 's/.*listening on http:\/\/[0-9.]*:\([0-9]*\).*/\1/p' "$1")"
        [ -n "$PORT" ] && return 0
        sleep 0.1
    done
    echo "crash: server did not start:"
    cat "$1"
    exit 1
}

# Graceful stop through the shutdown endpoint: drains in-flight work,
# flushes the WAL, and writes the final snapshot before the process exits.
stop_server() {
    "$BIN" get --port "$PORT" --post /v1/shutdown >/dev/null
    wait "$SERVER_PID" 2>/dev/null || true
    SERVER_PID=""
}

rps_of() {
    sed -n 's/.*"throughput_rps": \([0-9.]*\).*/\1/p' "$1"
}

# ---- Phase 1: in-memory oracle --------------------------------------------
ORACLE_LOG="$WORK/oracle.log"
"$BIN" serve --port 0 --seed "$SEED" --workers "$THREADS" >"$ORACLE_LOG" &
SERVER_PID=$!
await_port "$ORACLE_LOG"
"$BIN" loadgen --port "$PORT" --threads "$THREADS" --requests "$REQUESTS" \
    --seed "$SEED" --out "$WORK/oracle.json" --marks-out "$WORK/oracle.marks" >/dev/null
stop_server
MEM_RPS="$(rps_of "$WORK/oracle.json")"
[ -s "$WORK/oracle.marks" ] || { echo "crash: oracle run marked nothing"; exit 1; }

# ---- Phase 2: durable baseline (fault-free) -------------------------------
DUR_LOG="$WORK/durable.log"
"$BIN" serve --port 0 --seed "$SEED" --workers "$THREADS" \
    --data-dir "$WORK/base" --fsync batch >"$DUR_LOG" &
SERVER_PID=$!
await_port "$DUR_LOG"
"$BIN" loadgen --port "$PORT" --threads "$THREADS" --requests "$REQUESTS" \
    --seed "$SEED" --out "$WORK/durable.json" --marks-out "$WORK/durable.marks" >/dev/null
stop_server
DUR_RPS="$(rps_of "$WORK/durable.json")"

FAIL=0
cmp -s "$WORK/oracle.marks" "$WORK/durable.marks" \
    || { echo "crash: durability changed the mark set (must be a pure journaling layer)"; FAIL=1; }
grep -q '"status_5xx": 0' "$WORK/durable.json" \
    || { echo "crash: durable baseline saw 5xx responses"; FAIL=1; }
grep -q '"wal_records": 0' "$WORK/durable.json" \
    && { echo "crash: durable baseline journaled nothing"; FAIL=1; }

# Clean restart on the same dir: the shutdown snapshot covers the WAL.
DUR2_LOG="$WORK/durable_restart.log"
"$BIN" serve --port 0 --seed "$SEED" --workers "$THREADS" \
    --data-dir "$WORK/base" --fsync batch >"$DUR2_LOG" &
SERVER_PID=$!
await_port "$DUR2_LOG"
grep -q "replayed 0 records" "$DUR2_LOG" \
    || { echo "crash: clean restart replayed records:"; cat "$DUR2_LOG"; FAIL=1; }
stop_server

# ---- Phase 3: kill -9 mid-load with storage faults ------------------------
CRASH_LOG="$WORK/crash.log"
"$BIN" serve --port 0 --seed "$SEED" --workers "$THREADS" \
    --data-dir "$WORK/crashed" --fsync batch \
    --storage-fault-rate "$RATE" --storage-fault-seed "$SEED" >"$CRASH_LOG" &
SERVER_PID=$!
await_port "$CRASH_LOG"
# An oversized request budget guarantees the generator is still mid-flight
# at the kill; after the SIGKILL it drains fast on connection-refused.
"$BIN" loadgen --port "$PORT" --threads "$THREADS" --requests "$((REQUESTS * 50))" \
    --seed "$SEED" --marks-out "$WORK/acked.marks" >/dev/null &
LOADGEN_PID=$!
sleep 1
WAL_FAULTS="$("$BIN" get --port "$PORT" /metrics \
    | awk -F' ' '/^cp_wal_faults_total/ { sum += $2 } END { print sum + 0 }')"
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
wait "$LOADGEN_PID" || true
[ "$WAL_FAULTS" -gt 0 ] \
    || { echo "crash: no storage faults fired before the kill (rate $RATE)"; FAIL=1; }
[ -s "$WORK/acked.marks" ] \
    || { echo "crash: no marks were acked before the kill"; FAIL=1; }
cp -r "$WORK/crashed" "$WORK/crashed_copy"

# ---- Phase 4: recover the crashed dir -------------------------------------
REC_LOG="$WORK/recover.log"
"$BIN" serve --port 0 --seed "$SEED" --workers "$THREADS" \
    --data-dir "$WORK/crashed" --fsync batch >"$REC_LOG" &
SERVER_PID=$!
await_port "$REC_LOG"
REPLAYED="$(sed -n 's/.*replayed \([0-9]*\) records.*/\1/p' "$REC_LOG")"
RECOVERY_MS="$(sed -n 's/.* in \([0-9.]*\) ms.*/\1/p' "$REC_LOG")"
[ -n "$REPLAYED" ] && [ "$REPLAYED" -gt 0 ] \
    || { echo "crash: kill -9 left no WAL tail to replay:"; cat "$REC_LOG"; FAIL=1; }
"$BIN" get --port "$PORT" /v1/marks >"$WORK/recovered.marks"

# Gate: no acked mark lost. Every mark the client saw acknowledged was
# WAL-appended before the response was written, so acked is a lower bound
# on what recovery must restore.
LOST="$(comm -23 "$WORK/acked.marks" "$WORK/recovered.marks")"
if [ -n "$LOST" ]; then
    echo "crash: recovery lost acked marks:"
    echo "$LOST"
    FAIL=1
fi
# Gate: zero invented marks. The recovered set may exceed the acked set
# (a mark can be journaled but its response lost to the kill), yet every
# recovered mark must be one the fault-free oracle also makes.
INVENTED="$(comm -23 "$WORK/recovered.marks" "$WORK/oracle.marks")"
if [ -n "$INVENTED" ]; then
    echo "crash: recovery invented marks the oracle never made:"
    echo "$INVENTED"
    FAIL=1
fi
stop_server

# Clean restart after recovery: the post-recovery snapshot covers the log.
REC2_LOG="$WORK/recover_restart.log"
"$BIN" serve --port 0 --seed "$SEED" --workers "$THREADS" \
    --data-dir "$WORK/crashed" --fsync batch >"$REC2_LOG" &
SERVER_PID=$!
await_port "$REC2_LOG"
grep -q "replayed 0 records" "$REC2_LOG" \
    || { echo "crash: restart after recovery replayed records:"; cat "$REC2_LOG"; FAIL=1; }
stop_server

# ---- Phase 5: recovery is deterministic -----------------------------------
REC3_LOG="$WORK/recover_copy.log"
"$BIN" serve --port 0 --seed "$SEED" --workers "$THREADS" \
    --data-dir "$WORK/crashed_copy" --fsync batch >"$REC3_LOG" &
SERVER_PID=$!
await_port "$REC3_LOG"
"$BIN" get --port "$PORT" /v1/marks >"$WORK/recovered_copy.marks"
cmp -s "$WORK/recovered.marks" "$WORK/recovered_copy.marks" \
    || { echo "crash: two recoveries of the same bytes diverged"; FAIL=1; }
stop_server

# Zero panics anywhere, including the killed server's partial log.
if grep -q "panicked" "$WORK"/*.log; then
    echo "crash: server panicked:"
    grep "panicked" "$WORK"/*.log
    FAIL=1
fi

[ "$FAIL" = "0" ] || { echo "crash: FAILED"; exit 1; }

# ---- Report + throughput gate ---------------------------------------------
ACKED_N="$(wc -l <"$WORK/acked.marks" | tr -d ' ')"
RECOVERED_N="$(wc -l <"$WORK/recovered.marks" | tr -d ' ')"
ORACLE_N="$(wc -l <"$WORK/oracle.marks" | tr -d ' ')"
RATIO="$(awk -v dur="$DUR_RPS" -v mem="$MEM_RPS" \
    'BEGIN { printf "%.3f", (mem + 0 > 0) ? dur / mem : 0 }')"
cat >"$OUT" <<EOF
{
  "requests": $REQUESTS,
  "threads": $THREADS,
  "seed": $SEED,
  "storage_fault_rate": $RATE,
  "in_memory_rps": $MEM_RPS,
  "durable_batch_rps": $DUR_RPS,
  "durable_over_in_memory": $RATIO,
  "crash": {
    "wal_faults_before_kill": $WAL_FAULTS,
    "records_replayed": $REPLAYED,
    "recovery_ms": $RECOVERY_MS,
    "acked_marks": $ACKED_N,
    "recovered_marks": $RECOVERED_N,
    "oracle_marks": $ORACLE_N
  }
}
EOF

# The durability tax is bounded: group-committed batch fsync must keep at
# least 0.7x the in-memory throughput. SMOKE runs are too short for a
# stable ratio, so the gate applies to the full profile only.
if [ "$GATE_RPS" = "1" ]; then
    awk -v dur="$DUR_RPS" -v mem="$MEM_RPS" 'BEGIN {
        if (dur + 0 < 0.7 * (mem + 0)) {
            printf "crash: durable throughput too low: %s rps vs %s rps in-memory\n", dur, mem
            exit 1
        }
    }'
fi

echo "crash: ${ACKED_N} acked / ${RECOVERED_N} recovered / ${ORACLE_N} oracle marks;" \
    "replayed ${REPLAYED} records in ${RECOVERY_MS} ms; durable/in-memory rps ${RATIO}"
echo "crash: report written to $OUT"
