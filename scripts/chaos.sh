#!/usr/bin/env sh
# Chaos harness: run the same seeded load twice — once against a fault-free
# oracle server and once against a server injecting hidden-fetch faults —
# and gate on graceful degradation:
#
#   * zero wrong decisions: every cookie the chaos run marks useful is also
#     marked by the oracle (faults may defer marks, never invent them);
#   * zero panics in either server log;
#   * the chaos run still ends clean (no 5xx, no transport errors, and the
#     server/client verdict counters agree);
#   * faults actually fired (deferred probes observed), so the gate is not
#     vacuously green.
#
# Usage: scripts/chaos.sh [requests] [threads] [seed] [rate]
#   SMOKE=1 scripts/chaos.sh    # tiny CI profile (~5s): 2k requests,
#                               # report goes to /tmp, repo untouched
set -eu

cd "$(dirname "$0")/.."

REQUESTS="${1:-20000}"
THREADS="${2:-4}"
SEED="${3:-7}"
RATE="${4:-0.1}"
OUT="BENCH_chaos.json"
if [ "${SMOKE:-0}" = "1" ]; then
    REQUESTS=2000
    OUT="$(mktemp /tmp/bench_chaos.XXXXXX.json)"
fi

export CARGO_NET_OFFLINE=true
cargo build --release --quiet
BIN=target/release/cookiepicker

ORACLE_LOG="$(mktemp /tmp/cp_chaos_oracle.XXXXXX.log)"
CHAOS_LOG="$(mktemp /tmp/cp_chaos_faulty.XXXXXX.log)"
ORACLE_MARKS="$(mktemp /tmp/cp_chaos_oracle_marks.XXXXXX.txt)"
CHAOS_MARKS="$(mktemp /tmp/cp_chaos_faulty_marks.XXXXXX.txt)"
ORACLE_OUT="$(mktemp /tmp/cp_chaos_oracle_report.XXXXXX.json)"

"$BIN" serve --port 0 --seed "$SEED" --workers "$THREADS" >"$ORACLE_LOG" &
ORACLE_PID=$!
"$BIN" serve --port 0 --seed "$SEED" --workers "$THREADS" \
    --chaos-rate "$RATE" >"$CHAOS_LOG" &
CHAOS_PID=$!
trap 'kill "$ORACLE_PID" "$CHAOS_PID" 2>/dev/null || true' EXIT INT TERM

# Both banners print (and flush) the bound address; poll for them.
port_of() {
    sed -n 's/.*listening on http:\/\/[0-9.]*:\([0-9]*\).*/\1/p' "$1"
}
ORACLE_PORT=""
CHAOS_PORT=""
for _ in $(seq 1 50); do
    ORACLE_PORT="$(port_of "$ORACLE_LOG")"
    CHAOS_PORT="$(port_of "$CHAOS_LOG")"
    [ -n "$ORACLE_PORT" ] && [ -n "$CHAOS_PORT" ] && break
    sleep 0.1
done
[ -n "$ORACLE_PORT" ] || { echo "chaos: oracle server did not start"; cat "$ORACLE_LOG"; exit 1; }
[ -n "$CHAOS_PORT" ] || { echo "chaos: chaos server did not start"; cat "$CHAOS_LOG"; exit 1; }

# Identical seeded load against both servers. The oracle run defines the
# reference mark set; the chaos run must never exceed it.
"$BIN" loadgen --port "$ORACLE_PORT" --threads "$THREADS" --requests "$REQUESTS" \
    --seed "$SEED" --out "$ORACLE_OUT" --marks-out "$ORACLE_MARKS"
"$BIN" loadgen --port "$CHAOS_PORT" --threads "$THREADS" --requests "$REQUESTS" \
    --seed "$SEED" --out "$OUT" --marks-out "$CHAOS_MARKS"

stop_server() {
    if command -v nc >/dev/null 2>&1; then
        printf 'POST /v1/shutdown HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n' \
            | nc 127.0.0.1 "$1" >/dev/null 2>&1 || true
        wait "$2" 2>/dev/null || true
    else
        kill "$2" 2>/dev/null || true
        wait "$2" 2>/dev/null || true
    fi
}
stop_server "$ORACLE_PORT" "$ORACLE_PID"
stop_server "$CHAOS_PORT" "$CHAOS_PID"
trap - EXIT INT TERM

FAIL=0

# Gate 1: zero wrong decisions. Marks files are sorted and deduped by the
# load generator, so comm(1) applies directly: lines only in the chaos set
# are marks the oracle never made.
INVENTED="$(comm -23 "$CHAOS_MARKS" "$ORACLE_MARKS")"
if [ -n "$INVENTED" ]; then
    echo "chaos: faulted run invented marks the oracle never made:"
    echo "$INVENTED"
    FAIL=1
fi

# Gate 2: zero panics in either server log.
if grep -q "panicked" "$ORACLE_LOG" "$CHAOS_LOG"; then
    echo "chaos: server panicked:"
    grep "panicked" "$ORACLE_LOG" "$CHAOS_LOG"
    FAIL=1
fi

# Gate 3: the chaos run still ends clean at the transport and accounting
# level — degradation means deferring probes, not erroring requests.
for KEY in '"status_5xx": 0' '"transport_errors": 0' '"counters_match": true'; do
    grep -q "$KEY" "$OUT" || { echo "chaos: report missing $KEY"; FAIL=1; }
done

# Gate 4: the fault plan actually fired — a run that never deferred a probe
# proves nothing about degradation.
if grep -q '"deferred_probes": 0' "$OUT"; then
    echo "chaos: no probes were deferred — fault injection did not engage"
    FAIL=1
fi

[ "$FAIL" = "0" ] || { echo "chaos: FAILED"; cat "$OUT"; exit 1; }

ORACLE_N="$(wc -l <"$ORACLE_MARKS" | tr -d ' ')"
CHAOS_N="$(wc -l <"$CHAOS_MARKS" | tr -d ' ')"
echo "chaos: ${CHAOS_N}/${ORACLE_N} oracle marks reached under rate ${RATE}, none invented"
echo "chaos: report written to $OUT"
