#!/usr/bin/env sh
# Autonomous-crawl benchmark: run the cp-crawl frontier scheduler with no
# server and no load generator, and record the convergence + scaling
# report to BENCH_crawl.json.
#
# Gates:
#   * the Table-1 world converges to the paper's numbers (103 persistent,
#     7 marked, 3 real) purely from frontier scheduling — zero loadgen;
#   * two same-seed runs are bit-identical (order digest + marks);
#   * a million-host uniform world sustains the visits/sec floor at flat
#     resident memory (host retirement, not accumulation);
#   * zero panics anywhere.
#
# Usage: scripts/bench_crawl.sh [workers] [seed]
#   SMOKE=1 scripts/bench_crawl.sh  # tiny CI profile: 100k hosts, 2 s
#                                   # scale phase, report goes to /tmp
set -eu

cd "$(dirname "$0")/.."

WORKERS="${1:-8}"
SEED="${2:-7}"
HOSTS=1000000
DURATION=10
VISITS_PER_SEC_FLOOR=1500
RSS_CEILING_KB=262144
OUT="BENCH_crawl.json"
if [ "${SMOKE:-0}" = "1" ]; then
    HOSTS=100000
    DURATION=2
    VISITS_PER_SEC_FLOOR=300
    OUT="$(mktemp /tmp/bench_crawl.XXXXXX.json)"
fi

export CARGO_NET_OFFLINE=true
cargo build --release --quiet
BIN=target/release/cookiepicker

json_num() { sed -n "s/.*\"$1\": \([0-9.-]*\).*/\1/p" "$2" | head -n 1; }
json_str() { sed -n "s/.*\"$1\": \"\([^\"]*\)\".*/\1/p" "$2" | head -n 1; }

R1="$(mktemp /tmp/cp_crawl_r1.XXXXXX.json)"
R2="$(mktemp /tmp/cp_crawl_r2.XXXXXX.json)"
M1="$(mktemp /tmp/cp_crawl_m1.XXXXXX.txt)"
M2="$(mktemp /tmp/cp_crawl_m2.XXXXXX.txt)"
SCALE="$(mktemp /tmp/cp_crawl_scale.XXXXXX.json)"
ERRS="$(mktemp /tmp/cp_crawl_err.XXXXXX.log)"
trap 'rm -f "$R1" "$R2" "$M1" "$M2" "$SCALE" "$ERRS"' EXIT INT TERM

# ---- Phase 1: Table-1 convergence, twice, bit-identical ---------------
"$BIN" crawl --world table1 --seed "$SEED" --workers 4 \
    --out "$R1" --marks-out "$M1" >/dev/null 2>"$ERRS"
"$BIN" crawl --world table1 --seed "$SEED" --workers 4 \
    --out "$R2" --marks-out "$M2" >/dev/null 2>>"$ERRS"

for field_want in "persistent 103" "marked 7" "real 3" "frontier_depth_final 0" \
    "unknown_hosts 0" "transport_errors 0"; do
    field="${field_want% *}"
    want="${field_want#* }"
    got="$(json_num "$field" "$R1")"
    [ "$got" = "$want" ] || {
        echo "bench_crawl: $field = $got, want $want"
        cat "$R1"
        exit 1
    }
done

D1="$(json_str order_digest "$R1")"
D2="$(json_str order_digest "$R2")"
[ -n "$D1" ] && [ "$D1" = "$D2" ] || {
    echo "bench_crawl: same-seed runs diverged: digest $D1 vs $D2"
    exit 1
}
cmp -s "$M1" "$M2" || {
    echo "bench_crawl: same-seed runs produced different marks"
    diff "$M1" "$M2" || true
    exit 1
}
[ "$(wc -l <"$M1")" = 7 ] || {
    echo "bench_crawl: expected 7 mark lines, got $(wc -l <"$M1")"
    cat "$M1"
    exit 1
}

T1_VISITS="$(json_num visits "$R1")"
T1_TICKS="$(json_num ticks "$R1")"

# ---- Phase 2: million-host uniform world at flat RSS ------------------
"$BIN" crawl --world "uniform:$HOSTS" --seed "$SEED" --workers "$WORKERS" \
    --duration "$DURATION" --out "$SCALE" >/dev/null 2>>"$ERRS"

if grep -q "panicked" "$ERRS"; then
    echo "bench_crawl: panic detected"
    cat "$ERRS"
    exit 1
fi

SCALE_VPS="$(json_num visits_per_sec "$SCALE")"
SCALE_RSS_KB="$(json_num max_rss_kb "$SCALE")"
SCALE_VISITS="$(json_num visits "$SCALE")"
SCALE_RETIRED="$(json_num retired "$SCALE")"
SCALE_LAG_P50="$(json_num revisit_lag_p50_ticks "$SCALE")"
SCALE_LAG_P99="$(json_num revisit_lag_p99_ticks "$SCALE")"

awk -v vps="$SCALE_VPS" -v floor="$VISITS_PER_SEC_FLOOR" 'BEGIN {
    if (vps + 0 < floor + 0) {
        printf "bench_crawl: %s visits/sec below floor %s\n", vps, floor
        exit 1
    }
}'
if [ "${SCALE_RSS_KB%%.*}" -gt "$RSS_CEILING_KB" ]; then
    echo "bench_crawl: RSS $SCALE_RSS_KB kB exceeds ceiling $RSS_CEILING_KB kB"
    exit 1
fi
[ "${SCALE_RETIRED%%.*}" -gt 0 ] || {
    echo "bench_crawl: no hosts retired — resident state would grow with the world"
    exit 1
}

cat >"$OUT" <<JSON
{
  "workers": $WORKERS,
  "seed": $SEED,
  "table1_visits": $T1_VISITS,
  "table1_ticks": $T1_TICKS,
  "table1_persistent": 103,
  "table1_marked": 7,
  "table1_real": 3,
  "order_digest": "$D1",
  "scale_hosts": $HOSTS,
  "scale_duration_s": $DURATION,
  "scale_visits": $SCALE_VISITS,
  "scale_visits_per_sec": $SCALE_VPS,
  "scale_visits_per_sec_floor": $VISITS_PER_SEC_FLOOR,
  "scale_retired_hosts": $SCALE_RETIRED,
  "scale_revisit_lag_p50_ticks": $SCALE_LAG_P50,
  "scale_revisit_lag_p99_ticks": $SCALE_LAG_P99,
  "scale_max_rss_kb": $SCALE_RSS_KB,
  "rss_ceiling_kb": $RSS_CEILING_KB
}
JSON

echo "bench_crawl: table1 converged 103/7/3 in $T1_TICKS ticks ($T1_VISITS visits), digest $D1"
echo "bench_crawl: ${HOSTS}-host world at $SCALE_VPS visits/sec, peak RSS $SCALE_RSS_KB kB"
echo "bench_crawl: report written to $OUT"
