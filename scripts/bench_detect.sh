#!/usr/bin/env sh
# Detection benchmark: time reference vs compiled vs cached decide() over
# the seeded Table-1 corpus and record the report to BENCH_detect.json.
#
# The binary asserts every compiled decision bit-identical to the
# reference before the clock starts, so a passing run is also an
# equivalence check. The full profile additionally gates on the headline
# claim: compiled decide() must be at least 2x the reference at the
# median on this corpus.
#
# Usage: scripts/bench_detect.sh [seed] [sites] [iters]
#   SMOKE=1 scripts/bench_detect.sh   # tiny CI profile (~2s): 6 sites,
#                                     # 5 iters, report goes to /tmp,
#                                     # no speedup gate (CI machines are
#                                     # noisy), repo untouched
set -eu

cd "$(dirname "$0")/.."

SEED="${1:-7}"
SITES="${2:-20}"
ITERS="${3:-30}"
OUT="BENCH_detect.json"
MIN_SPEEDUP="2.0"
if [ "${SMOKE:-0}" = "1" ]; then
    SITES=6
    ITERS=5
    OUT="$(mktemp /tmp/bench_detect.XXXXXX.json)"
    MIN_SPEEDUP=""
fi

export CARGO_NET_OFFLINE=true
cargo build --release --quiet -p cp-bench

target/release/bench_detect "$SEED" "$SITES" "$ITERS" "$OUT"

if [ -n "$MIN_SPEEDUP" ]; then
    awk -v min="$MIN_SPEEDUP" '
        /"speedup_median"/ {
            gsub(/[^0-9.]/, "", $2)
            if ($2 + 0 < min + 0) {
                printf "bench_detect: speedup_median %s is below the %sx gate\n", $2, min
                exit 1
            }
            found = 1
        }
        END { if (!found) { print "bench_detect: no speedup_median in report"; exit 1 } }
    ' "$OUT"
fi

echo "bench_detect: report written to $OUT"
