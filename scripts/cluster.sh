#!/usr/bin/env sh
# Cluster failover harness: prove the WAL-shipped replication tier loses
# no acked mark when the primary dies, invents nothing, and fences a
# stale primary on rejoin.
#
# Phases and gates:
#
#   1. oracle      — a single in-memory server takes the full seeded load;
#                    its mark set is the reference and its rps the
#                    single-node baseline.
#   2. determinism — a 3-node cluster behind the router takes the *same*
#                    load, twice from scratch: both runs' mark sets must
#                    be byte-identical to each other and to the oracle
#                    (replication is invisible to the contract).
#   3. failover    — a fresh 3-node cluster takes the load while the
#                    primary is SIGKILLed mid-run. The router must detect
#                    the death, promote the most-caught-up follower, and
#                    the load generator must ride the blackout on its 503
#                    retry budget. Gates: zero acked marks lost (the
#                    report's lost_acks and a comm -23 against the final
#                    dump), zero marks invented vs the oracle, at least
#                    one failover counted.
#   4. rejoin      — restarting the dead primary's role at its old
#                    generation against the survivors must be fenced: the
#                    server refuses to start and names the fence.
#   5. partition   — a primary leads a follower through the seeded chaos
#                    proxy (cp-chaos-proxy); the schedule cuts the link
#                    mid-load and heals it. Gates: the follower converges
#                    to the primary's applied sequence automatically (no
#                    restart, no operator), no acked mark is lost or
#                    invented across partition → heal → resync, and the
#                    backlog replay is visible in cp_repl_resync_total.
#   6. restart     — the follower is SIGKILLed and restarted empty at its
#                    old replication port. The primary's maintenance
#                    thread must redial and walk it back up the resync
#                    ladder (backlog replay or snapshot bootstrap) until
#                    it converges, hands-off.
#   7. stall       — a second follower is stalled (bytes stop, connection
#                    stays up) through the proxy while quorum load runs.
#                    Gates: the stalled peer is demoted within the ack
#                    deadline (cp_repl_slow_demotions_total), the worst
#                    client write stays far under the old 5 s stream
#                    timeout, and the peer catches up after the heal.
#
# Usage: scripts/cluster.sh [requests] [threads] [seed]
#   SMOKE=1 scripts/cluster.sh   # tiny CI profile: 2k requests, report
#                                # goes to /tmp, repo untouched
set -eu

cd "$(dirname "$0")/.."

REQUESTS="${1:-20000}"
THREADS="${2:-4}"
SEED="${3:-7}"
OUT="BENCH_cluster.json"
if [ "${SMOKE:-0}" = "1" ]; then
    REQUESTS=2000
    OUT="$(mktemp /tmp/bench_cluster.XXXXXX.json)"
fi

export CARGO_NET_OFFLINE=true
cargo build --release --quiet
BIN=target/release/cookiepicker

WORK="$(mktemp -d /tmp/cp_cluster.XXXXXX)"
PIDS=""
cleanup() {
    for pid in $PIDS; do
        kill -9 "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

# The serve/route banner prints (and flushes) the bound address; poll for
# it. Sets PORT, fails the run if the process never comes up.
await_port() {
    PORT=""
    for _ in $(seq 1 50); do
        PORT="$(sed -n 's/.*listening on http:\/\/[0-9.]*:\([0-9]*\).*/\1/p' "$1")"
        [ -n "$PORT" ] && return 0
        sleep 0.1
    done
    echo "cluster: process did not start:"
    cat "$1"
    exit 1
}

# Starts one replication-capable node (extra serve flags pass through);
# sets NODE_PID, NODE_PORT, NODE_REPL.
start_node() {
    NODE_LOG="$1"
    shift
    "$BIN" serve --port 0 --seed "$SEED" --workers 2 --repl-port 0 "$@" >"$NODE_LOG" &
    NODE_PID=$!
    PIDS="$PIDS $NODE_PID"
    await_port "$NODE_LOG"
    NODE_PORT="$PORT"
    NODE_REPL="$(sed -n 's/.*replication on [0-9.]*:\([0-9]*\).*/\1/p' "$NODE_LOG")"
    [ -n "$NODE_REPL" ] || { echo "cluster: no replication banner in $NODE_LOG"; cat "$NODE_LOG"; exit 1; }
}

# Starts the chaos proxy in front of $2 with schedule $3; sets PROXY_PID,
# PROXY_PORT. Phase transitions land in the log for await_phase.
start_proxy() {
    "$BIN" chaos-proxy --target "127.0.0.1:$2" --schedule "$3" --seed "$SEED" >"$1" 2>&1 &
    PROXY_PID=$!
    PIDS="$PIDS $PROXY_PID"
    PROXY_PORT=""
    for _ in $(seq 1 50); do
        PROXY_PORT="$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\) ->.*/\1/p' "$1")"
        [ -n "$PROXY_PORT" ] && return 0
        sleep 0.1
    done
    echo "cluster: chaos proxy did not start:"
    cat "$1"
    exit 1
}

# Waits until the proxy log shows at least $2 transitions into phase $3.
await_phase() {
    for _ in $(seq 1 200); do
        [ "$(grep -c "phase -> $3" "$1" || true)" -ge "$2" ] && return 0
        sleep 0.1
    done
    echo "cluster: proxy never reached phase $3 (x$2):"
    cat "$1"
    exit 1
}

seq_of() {
    "$BIN" get --port "$1" /healthz | sed -n 's/.*"replication_applied_seq":\([0-9]*\).*/\1/p'
}

metric_of() {
    "$BIN" get --port "$1" /metrics | sed -n "s/^$2 \([0-9][0-9]*\).*/\1/p"
}

now_ms() {
    echo $(( $(date +%s%N) / 1000000 ))
}

# Polls until metric $2 on node $1 reaches at least $3 (up to $4 s). Seq
# convergence can beat the counters: a snapshot bootstrap lands the
# follower at head *before* the primary's post-bootstrap redial counts
# the resync and raises the peer gauge, so gates poll rather than read.
await_metric_ge() {
    i=0
    while :; do
        V="$(metric_of "$1" "$2")"
        [ -n "$V" ] && [ "$V" -ge "$3" ] && return 0
        i=$((i + 1))
        if [ "$i" -ge $(( $4 * 10 )) ]; then
            echo "cluster: $5 ($2 stuck at ${V:-none})"
            return 1
        fi
        sleep 0.1
    done
}

# Polls until node $2's applied sequence matches node $1's (up to $3 s).
await_converged() {
    i=0
    while :; do
        SA="$(seq_of "$1")"
        SB="$(seq_of "$2" 2>/dev/null || true)"
        [ -n "$SA" ] && [ "$SA" = "$SB" ] && return 0
        i=$((i + 1))
        if [ "$i" -ge $(( $3 * 10 )) ]; then
            echo "cluster: $4 never converged (primary at ${SA:-?}, follower at ${SB:-?})"
            return 1
        fi
        sleep 0.1
    done
}

# Starts 3 nodes + the router (which leads node 1 at generation 1); sets
# N{1,2,3}_{PID,PORT,REPL} and ROUTER_{PID,PORT}.
start_cluster() {
    start_node "$WORK/$1-node1.log"
    N1_PID=$NODE_PID; N1_PORT=$NODE_PORT; N1_REPL=$NODE_REPL
    start_node "$WORK/$1-node2.log"
    N2_PID=$NODE_PID; N2_PORT=$NODE_PORT; N2_REPL=$NODE_REPL
    start_node "$WORK/$1-node3.log"
    N3_PID=$NODE_PID; N3_PORT=$NODE_PORT; N3_REPL=$NODE_REPL
    "$BIN" route --port 0 --workers "$THREADS" --heartbeat-ms 100 --miss-threshold 3 \
        --backend "127.0.0.1:$N1_PORT,127.0.0.1:$N1_REPL" \
        --backend "127.0.0.1:$N2_PORT,127.0.0.1:$N2_REPL" \
        --backend "127.0.0.1:$N3_PORT,127.0.0.1:$N3_REPL" >"$WORK/$1-router.log" &
    ROUTER_PID=$!
    PIDS="$PIDS $ROUTER_PID"
    await_port "$WORK/$1-router.log"
    ROUTER_PORT="$PORT"
}

# Graceful stop of one process through its shutdown endpoint.
stop_one() {
    "$BIN" get --port "$1" --post /v1/shutdown >/dev/null 2>&1 || true
    wait "$2" 2>/dev/null || true
}

stop_cluster() {
    stop_one "$ROUTER_PORT" "$ROUTER_PID"
    stop_one "$N1_PORT" "$N1_PID"
    stop_one "$N2_PORT" "$N2_PID"
    stop_one "$N3_PORT" "$N3_PID"
}

rps_of() {
    sed -n 's/.*"throughput_rps": \([0-9.]*\).*/\1/p' "$1"
}

FAIL=0

# ---- Phase 1: single-node oracle ------------------------------------------
ORACLE_LOG="$WORK/oracle.log"
"$BIN" serve --port 0 --seed "$SEED" --workers "$THREADS" >"$ORACLE_LOG" &
ORACLE_PID=$!
PIDS="$PIDS $ORACLE_PID"
await_port "$ORACLE_LOG"
"$BIN" loadgen --port "$PORT" --threads "$THREADS" --requests "$REQUESTS" \
    --seed "$SEED" --out "$WORK/oracle.json" --marks-out "$WORK/oracle.marks" >/dev/null
stop_one "$PORT" "$ORACLE_PID"
SINGLE_RPS="$(rps_of "$WORK/oracle.json")"
[ -s "$WORK/oracle.marks" ] || { echo "cluster: oracle run marked nothing"; exit 1; }

# ---- Phase 2: same-seed cluster runs are bit-identical --------------------
for det in detA detB; do
    start_cluster "$det"
    "$BIN" loadgen --port "$ROUTER_PORT" --threads "$THREADS" --requests "$REQUESTS" \
        --seed "$SEED" --out "$WORK/$det.json" --marks-out "$WORK/$det.marks" >/dev/null
    stop_cluster
    grep -q '"status_5xx": 0' "$WORK/$det.json" \
        || { echo "cluster: steady-state run $det saw 5xx responses"; FAIL=1; }
    grep -q '"lost_acks": 0' "$WORK/$det.json" \
        || { echo "cluster: steady-state run $det lost acked marks"; FAIL=1; }
done
cmp -s "$WORK/detA.marks" "$WORK/detB.marks" \
    || { echo "cluster: two same-seed cluster runs diverged"; FAIL=1; }
cmp -s "$WORK/detA.marks" "$WORK/oracle.marks" \
    || { echo "cluster: replication changed the mark set vs the single-node oracle"; FAIL=1; }
CLUSTER_RPS="$(rps_of "$WORK/detA.json")"

# ---- Phase 3: kill -9 the primary mid-load --------------------------------
start_cluster fail
# A larger budget keeps the generator mid-flight at the kill; the 503
# retry budget (8 tries, doubling from 40 ms) outlasts any promotion.
"$BIN" loadgen --port "$ROUTER_PORT" --threads "$THREADS" --requests "$((REQUESTS * 5))" \
    --seed "$SEED" --retries 8 --backoff-ms 40 \
    --out "$WORK/failover.json" --marks-out "$WORK/acked.marks" >/dev/null &
LOADGEN_PID=$!
sleep 0.5
kill -9 "$N1_PID"
wait "$N1_PID" 2>/dev/null || true
wait "$LOADGEN_PID" || { echo "cluster: loadgen failed during failover"; FAIL=1; }

HEALTH="$("$BIN" get --port "$ROUTER_PORT" /healthz)"
FAILOVERS="$(printf '%s' "$HEALTH" | sed -n 's/.*"failovers":\([0-9]*\).*/\1/p')"
GENERATION="$(printf '%s' "$HEALTH" | sed -n 's/.*"generation":\([0-9]*\).*/\1/p')"
BLACKOUT_MS="$(printf '%s' "$HEALTH" | sed -n 's/.*"last_failover_blackout_ms":\([0-9]*\).*/\1/p')"
PROMOTION_SEQ="$(printf '%s' "$HEALTH" | sed -n 's/.*"last_promotion_seq":\([0-9]*\).*/\1/p')"
[ -n "$FAILOVERS" ] && [ "$FAILOVERS" -ge 1 ] \
    || { echo "cluster: router never failed over: $HEALTH"; FAIL=1; }
[ -n "$GENERATION" ] && [ "$GENERATION" -ge 2 ] \
    || { echo "cluster: promotion did not advance the generation: $HEALTH"; FAIL=1; }
"$BIN" get --port "$ROUTER_PORT" /metrics | grep -q '^cp_failover_total [1-9]' \
    || { echo "cluster: cp_failover_total never incremented"; FAIL=1; }

# Gate: the generator itself verified every acked mark against the final
# dump — lost_acks must be zero.
grep -q '"lost_acks": 0' "$WORK/failover.json" \
    || { echo "cluster: loadgen reported lost acked marks:"; \
         grep '"lost_acks"' "$WORK/failover.json"; FAIL=1; }
[ -s "$WORK/acked.marks" ] || { echo "cluster: no marks were acked before the kill"; FAIL=1; }

# Gate: no acked mark lost — every mark the client saw acknowledged must
# be in the promoted primary's final dump.
"$BIN" get --port "$ROUTER_PORT" /v1/marks >"$WORK/final.marks"
LOST="$(comm -23 "$WORK/acked.marks" "$WORK/final.marks")"
if [ -n "$LOST" ]; then
    echo "cluster: failover lost acked marks:"
    echo "$LOST"
    FAIL=1
fi
# Gate: zero invented marks. The final set may exceed the acked set (a
# record can replicate without its response surviving the kill), yet every
# mark must be one the fault-free single-node oracle also makes.
INVENTED="$(comm -23 "$WORK/final.marks" "$WORK/oracle.marks")"
if [ -n "$INVENTED" ]; then
    echo "cluster: failover invented marks the oracle never made:"
    echo "$INVENTED"
    FAIL=1
fi

# ---- Phase 4: the stale primary is fenced on rejoin -----------------------
# Restarting the dead primary's role at its old generation against the
# survivors must be refused: both survivors have witnessed generation 2.
REJOIN_LOG="$WORK/rejoin.log"
REJOIN_STATUS=0
"$BIN" serve --port 0 --seed "$SEED" --workers 2 --repl-generation 1 \
    --repl-follower "127.0.0.1:$N2_REPL" \
    --repl-follower "127.0.0.1:$N3_REPL" >"$REJOIN_LOG" 2>&1 || REJOIN_STATUS=$?
[ "$REJOIN_STATUS" -ne 0 ] \
    || { echo "cluster: stale-generation rejoin was accepted:"; cat "$REJOIN_LOG"; FAIL=1; }
grep -q "fenced" "$REJOIN_LOG" \
    || { echo "cluster: rejoin refusal did not name the fence:"; cat "$REJOIN_LOG"; FAIL=1; }
stop_cluster

# ---- Phase 5: partition → heal → automatic backlog resync -----------------
# B follows A through the chaos proxy. Ack policy `none` keeps A writable
# while the link is cut; after the scheduled heal, A's maintenance thread
# must redial and replay the gap from its in-memory backlog until B holds
# every acked mark — no restart, no operator action.
start_node "$WORK/heal-b.log"
HEAL_B_PID=$NODE_PID; HEAL_B_PORT=$NODE_PORT; HEAL_B_REPL=$NODE_REPL
start_proxy "$WORK/heal-proxy.log" "$HEAL_B_REPL" "open:4000,cut:2000,open:0"
HEAL_PROXY_PID=$PROXY_PID; HEAL_PROXY_PORT=$PROXY_PORT
start_node "$WORK/heal-a.log" --repl-ack none --repl-generation 1 \
    --repl-follower "127.0.0.1:$HEAL_PROXY_PORT"
HEAL_A_PID=$NODE_PID; HEAL_A_PORT=$NODE_PORT

"$BIN" loadgen --port "$HEAL_A_PORT" --threads "$THREADS" --requests "$((REQUESTS / 4))" \
    --seed "$SEED" --marks-out "$WORK/heal-acked1.marks" >/dev/null
await_phase "$WORK/heal-proxy.log" 1 cut
# The partition is up: these writes are acked by A alone and must survive
# the heal onto B. (The longer run re-walks the same deterministic mix,
# so its tail is genuinely new state the follower has never seen.)
"$BIN" loadgen --port "$HEAL_A_PORT" --threads "$THREADS" --requests "$REQUESTS" \
    --seed "$SEED" --marks-out "$WORK/heal-acked2.marks" >/dev/null
await_phase "$WORK/heal-proxy.log" 2 open

HEAL_T0="$(now_ms)"
await_converged "$HEAL_A_PORT" "$HEAL_B_PORT" 30 "partitioned follower" || FAIL=1
HEAL_CONVERGE_MS=$(( $(now_ms) - HEAL_T0 ))
"$BIN" get --port "$HEAL_A_PORT" /v1/marks >"$WORK/heal-a.marks"
"$BIN" get --port "$HEAL_B_PORT" /v1/marks >"$WORK/heal-b.marks"
sort -u "$WORK/heal-acked1.marks" "$WORK/heal-acked2.marks" >"$WORK/heal-acked.marks"
LOST="$(comm -23 "$WORK/heal-acked.marks" "$WORK/heal-b.marks")"
if [ -n "$LOST" ]; then
    echo "cluster: resynced follower lost acked marks:"
    echo "$LOST"
    FAIL=1
fi
cmp -s "$WORK/heal-a.marks" "$WORK/heal-b.marks" \
    || { echo "cluster: resynced follower diverged from the primary's mark set"; FAIL=1; }
await_metric_ge "$HEAL_A_PORT" cp_repl_resync_total 1 15 \
    "the heal never counted a resync" || FAIL=1
P5_RESYNCS="$(metric_of "$HEAL_A_PORT" cp_repl_resync_total)"
P5_RECORDS="$(metric_of "$HEAL_A_PORT" cp_repl_resync_records_total)"

# ---- Phase 6: follower kill -9 + restart → hands-off reconvergence --------
# The same pair keeps running: B dies hard, A keeps acking writes, B comes
# back *empty* on its old replication port. The maintenance redial must
# walk it up the resync ladder (backlog replay, or snapshot bootstrap when
# the ring no longer covers a from-zero restart) until it converges.
kill -9 "$HEAL_B_PID"
wait "$HEAL_B_PID" 2>/dev/null || true
"$BIN" loadgen --port "$HEAL_A_PORT" --threads "$THREADS" --requests "$((REQUESTS / 4))" \
    --seed "$SEED" >/dev/null
sleep 0.2
"$BIN" serve --port 0 --seed "$SEED" --workers 2 --repl-port "$HEAL_B_REPL" \
    >"$WORK/restart-b.log" &
RESTART_B_PID=$!
PIDS="$PIDS $RESTART_B_PID"
await_port "$WORK/restart-b.log"
RESTART_B_PORT="$PORT"

RESTART_T0="$(now_ms)"
await_converged "$HEAL_A_PORT" "$RESTART_B_PORT" 30 "restarted follower" || FAIL=1
RESTART_CONVERGE_MS=$(( $(now_ms) - RESTART_T0 ))
"$BIN" get --port "$HEAL_A_PORT" /v1/marks >"$WORK/restart-a.marks"
"$BIN" get --port "$RESTART_B_PORT" /v1/marks >"$WORK/restart-b.marks"
cmp -s "$WORK/restart-a.marks" "$WORK/restart-b.marks" \
    || { echo "cluster: restarted follower diverged from the primary's mark set"; FAIL=1; }
PEER_UP_OK=0
for _ in $(seq 1 150); do
    if "$BIN" get --port "$HEAL_A_PORT" /metrics | grep -q '^cp_repl_peer_up{peer="0"} 1'; then
        PEER_UP_OK=1
        break
    fi
    sleep 0.1
done
[ "$PEER_UP_OK" = "1" ] \
    || { echo "cluster: cp_repl_peer_up never recovered after the restart"; FAIL=1; }
P6_HINTS="$(metric_of "$HEAL_A_PORT" cp_repl_bootstrap_hints_total)"
stop_one "$HEAL_A_PORT" "$HEAL_A_PID"
stop_one "$RESTART_B_PORT" "$RESTART_B_PID"
kill -9 "$HEAL_PROXY_PID" 2>/dev/null || true

# ---- Phase 7: stalled follower cannot hold client writes hostage ----------
# A leads B directly and C through a proxy that goes silent (stall: bytes
# stop, connections stay up) mid-run. Quorum needs only one follower, so
# writes must keep flowing: the stalled peer is demoted within the ack
# deadline instead of blocking the shard lock for the 5 s stream timeout.
start_node "$WORK/stall-b.log"
STALL_B_PID=$NODE_PID; STALL_B_PORT=$NODE_PORT; STALL_B_REPL=$NODE_REPL
start_node "$WORK/stall-c.log"
STALL_C_PID=$NODE_PID; STALL_C_PORT=$NODE_PORT; STALL_C_REPL=$NODE_REPL
start_proxy "$WORK/stall-proxy.log" "$STALL_C_REPL" "open:1000,stall:3000,open:0"
STALL_PROXY_PID=$PROXY_PID; STALL_PROXY_PORT=$PROXY_PORT
start_node "$WORK/stall-a.log" --repl-ack quorum --repl-generation 1 \
    --repl-follower "127.0.0.1:$STALL_B_REPL" \
    --repl-follower "127.0.0.1:$STALL_PROXY_PORT"
STALL_A_PID=$NODE_PID; STALL_A_PORT=$NODE_PORT

await_phase "$WORK/stall-proxy.log" 1 stall
"$BIN" loadgen --port "$STALL_A_PORT" --threads "$THREADS" --requests "$REQUESTS" \
    --seed "$SEED" --out "$WORK/stall.json" >/dev/null
P7_MAX_MICROS="$(sed -n 's/.*"max": \([0-9]*\).*/\1/p' "$WORK/stall.json")"
P7_DEMOTIONS="$(metric_of "$STALL_A_PORT" cp_repl_slow_demotions_total)"
P7_STALL_MAX="$(metric_of "$STALL_A_PORT" cp_repl_ack_stall_max_micros)"
[ -n "$P7_DEMOTIONS" ] && [ "$P7_DEMOTIONS" -ge 1 ] \
    || { echo "cluster: the stall never demoted the silent peer"; FAIL=1; }
[ -n "$P7_MAX_MICROS" ] && [ "$P7_MAX_MICROS" -lt 2500000 ] \
    || { echo "cluster: a client write stalled ${P7_MAX_MICROS:-?} us behind a silent peer"; FAIL=1; }
grep -q '"status_5xx": 0' "$WORK/stall.json" \
    || { echo "cluster: quorum writes failed while one follower was stalled"; FAIL=1; }

await_phase "$WORK/stall-proxy.log" 2 open
await_converged "$STALL_A_PORT" "$STALL_C_PORT" 30 "stalled follower" || FAIL=1
"$BIN" get --port "$STALL_A_PORT" /v1/marks >"$WORK/stall-a.marks"
"$BIN" get --port "$STALL_C_PORT" /v1/marks >"$WORK/stall-c.marks"
cmp -s "$WORK/stall-a.marks" "$WORK/stall-c.marks" \
    || { echo "cluster: the healed stalled follower diverged"; FAIL=1; }
stop_one "$STALL_A_PORT" "$STALL_A_PID"
stop_one "$STALL_B_PORT" "$STALL_B_PID"
stop_one "$STALL_C_PORT" "$STALL_C_PID"
kill -9 "$STALL_PROXY_PID" 2>/dev/null || true

# Zero panics anywhere, including the killed primary's partial log.
if grep -q "panicked" "$WORK"/*.log; then
    echo "cluster: a process panicked:"
    grep "panicked" "$WORK"/*.log
    FAIL=1
fi

[ "$FAIL" = "0" ] || { echo "cluster: FAILED"; exit 1; }

# ---- Report ---------------------------------------------------------------
ACKED_N="$(wc -l <"$WORK/acked.marks" | tr -d ' ')"
FINAL_N="$(wc -l <"$WORK/final.marks" | tr -d ' ')"
ORACLE_N="$(wc -l <"$WORK/oracle.marks" | tr -d ' ')"
RETRIED="$(sed -n 's/.*"retried_requests": \([0-9]*\).*/\1/p' "$WORK/failover.json")"
RESYNCS_OBS="$(sed -n 's/.*"resyncs_observed": \([0-9]*\).*/\1/p' "$WORK/failover.json")"
FAILOVER_STALL="$(sed -n 's/.*"max_ack_stall_micros": \([0-9]*\).*/\1/p' "$WORK/failover.json")"
RATIO="$(awk -v clu="$CLUSTER_RPS" -v one="$SINGLE_RPS" \
    'BEGIN { printf "%.3f", (one + 0 > 0) ? clu / one : 0 }')"
cat >"$OUT" <<EOF
{
  "requests": $REQUESTS,
  "threads": $THREADS,
  "seed": $SEED,
  "single_node_rps": $SINGLE_RPS,
  "cluster_rps": $CLUSTER_RPS,
  "cluster_over_single": $RATIO,
  "failover": {
    "failovers": $FAILOVERS,
    "generation": $GENERATION,
    "blackout_ms": ${BLACKOUT_MS:-0},
    "records_replayed": ${PROMOTION_SEQ:-0},
    "retried_requests": ${RETRIED:-0},
    "acked_marks": $ACKED_N,
    "final_marks": $FINAL_N,
    "oracle_marks": $ORACLE_N,
    "resyncs_observed": ${RESYNCS_OBS:-0},
    "max_ack_stall_micros": ${FAILOVER_STALL:-0}
  },
  "resync": {
    "partition_heal_converge_ms": ${HEAL_CONVERGE_MS:-0},
    "partition_resyncs": ${P5_RESYNCS:-0},
    "resync_records_replayed": ${P5_RECORDS:-0},
    "restart_converge_ms": ${RESTART_CONVERGE_MS:-0},
    "restart_bootstrap_hints": ${P6_HINTS:-0},
    "stall_demotions": ${P7_DEMOTIONS:-0},
    "stall_write_max_micros": ${P7_MAX_MICROS:-0},
    "max_ack_stall_micros": ${P7_STALL_MAX:-0}
  }
}
EOF

echo "cluster: ${ACKED_N} acked / ${FINAL_N} final / ${ORACLE_N} oracle marks;" \
    "failover blackout ${BLACKOUT_MS:-0} ms at promotion seq ${PROMOTION_SEQ:-0};" \
    "cluster/single rps ${RATIO}"
echo "cluster: partition healed in ${HEAL_CONVERGE_MS:-0} ms (${P5_RECORDS:-0} records replayed);" \
    "restart reconverged in ${RESTART_CONVERGE_MS:-0} ms;" \
    "stall demoted ${P7_DEMOTIONS:-0} peer(s), worst write ${P7_MAX_MICROS:-0} us"
echo "cluster: report written to $OUT"
