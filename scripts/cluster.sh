#!/usr/bin/env sh
# Cluster failover harness: prove the WAL-shipped replication tier loses
# no acked mark when the primary dies, invents nothing, and fences a
# stale primary on rejoin.
#
# Phases and gates:
#
#   1. oracle      — a single in-memory server takes the full seeded load;
#                    its mark set is the reference and its rps the
#                    single-node baseline.
#   2. determinism — a 3-node cluster behind the router takes the *same*
#                    load, twice from scratch: both runs' mark sets must
#                    be byte-identical to each other and to the oracle
#                    (replication is invisible to the contract).
#   3. failover    — a fresh 3-node cluster takes the load while the
#                    primary is SIGKILLed mid-run. The router must detect
#                    the death, promote the most-caught-up follower, and
#                    the load generator must ride the blackout on its 503
#                    retry budget. Gates: zero acked marks lost (the
#                    report's lost_acks and a comm -23 against the final
#                    dump), zero marks invented vs the oracle, at least
#                    one failover counted.
#   4. rejoin      — restarting the dead primary's role at its old
#                    generation against the survivors must be fenced: the
#                    server refuses to start and names the fence.
#
# Usage: scripts/cluster.sh [requests] [threads] [seed]
#   SMOKE=1 scripts/cluster.sh   # tiny CI profile: 2k requests, report
#                                # goes to /tmp, repo untouched
set -eu

cd "$(dirname "$0")/.."

REQUESTS="${1:-20000}"
THREADS="${2:-4}"
SEED="${3:-7}"
OUT="BENCH_cluster.json"
if [ "${SMOKE:-0}" = "1" ]; then
    REQUESTS=2000
    OUT="$(mktemp /tmp/bench_cluster.XXXXXX.json)"
fi

export CARGO_NET_OFFLINE=true
cargo build --release --quiet
BIN=target/release/cookiepicker

WORK="$(mktemp -d /tmp/cp_cluster.XXXXXX)"
PIDS=""
cleanup() {
    for pid in $PIDS; do
        kill -9 "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

# The serve/route banner prints (and flushes) the bound address; poll for
# it. Sets PORT, fails the run if the process never comes up.
await_port() {
    PORT=""
    for _ in $(seq 1 50); do
        PORT="$(sed -n 's/.*listening on http:\/\/[0-9.]*:\([0-9]*\).*/\1/p' "$1")"
        [ -n "$PORT" ] && return 0
        sleep 0.1
    done
    echo "cluster: process did not start:"
    cat "$1"
    exit 1
}

# Starts one replication-capable node; sets NODE_PID, NODE_PORT, NODE_REPL.
start_node() {
    "$BIN" serve --port 0 --seed "$SEED" --workers 2 --repl-port 0 >"$1" &
    NODE_PID=$!
    PIDS="$PIDS $NODE_PID"
    await_port "$1"
    NODE_PORT="$PORT"
    NODE_REPL="$(sed -n 's/.*replication on [0-9.]*:\([0-9]*\).*/\1/p' "$1")"
    [ -n "$NODE_REPL" ] || { echo "cluster: no replication banner in $1"; cat "$1"; exit 1; }
}

# Starts 3 nodes + the router (which leads node 1 at generation 1); sets
# N{1,2,3}_{PID,PORT,REPL} and ROUTER_{PID,PORT}.
start_cluster() {
    start_node "$WORK/$1-node1.log"
    N1_PID=$NODE_PID; N1_PORT=$NODE_PORT; N1_REPL=$NODE_REPL
    start_node "$WORK/$1-node2.log"
    N2_PID=$NODE_PID; N2_PORT=$NODE_PORT; N2_REPL=$NODE_REPL
    start_node "$WORK/$1-node3.log"
    N3_PID=$NODE_PID; N3_PORT=$NODE_PORT; N3_REPL=$NODE_REPL
    "$BIN" route --port 0 --workers "$THREADS" --heartbeat-ms 100 --miss-threshold 3 \
        --backend "127.0.0.1:$N1_PORT,127.0.0.1:$N1_REPL" \
        --backend "127.0.0.1:$N2_PORT,127.0.0.1:$N2_REPL" \
        --backend "127.0.0.1:$N3_PORT,127.0.0.1:$N3_REPL" >"$WORK/$1-router.log" &
    ROUTER_PID=$!
    PIDS="$PIDS $ROUTER_PID"
    await_port "$WORK/$1-router.log"
    ROUTER_PORT="$PORT"
}

# Graceful stop of one process through its shutdown endpoint.
stop_one() {
    "$BIN" get --port "$1" --post /v1/shutdown >/dev/null 2>&1 || true
    wait "$2" 2>/dev/null || true
}

stop_cluster() {
    stop_one "$ROUTER_PORT" "$ROUTER_PID"
    stop_one "$N1_PORT" "$N1_PID"
    stop_one "$N2_PORT" "$N2_PID"
    stop_one "$N3_PORT" "$N3_PID"
}

rps_of() {
    sed -n 's/.*"throughput_rps": \([0-9.]*\).*/\1/p' "$1"
}

FAIL=0

# ---- Phase 1: single-node oracle ------------------------------------------
ORACLE_LOG="$WORK/oracle.log"
"$BIN" serve --port 0 --seed "$SEED" --workers "$THREADS" >"$ORACLE_LOG" &
ORACLE_PID=$!
PIDS="$PIDS $ORACLE_PID"
await_port "$ORACLE_LOG"
"$BIN" loadgen --port "$PORT" --threads "$THREADS" --requests "$REQUESTS" \
    --seed "$SEED" --out "$WORK/oracle.json" --marks-out "$WORK/oracle.marks" >/dev/null
stop_one "$PORT" "$ORACLE_PID"
SINGLE_RPS="$(rps_of "$WORK/oracle.json")"
[ -s "$WORK/oracle.marks" ] || { echo "cluster: oracle run marked nothing"; exit 1; }

# ---- Phase 2: same-seed cluster runs are bit-identical --------------------
for det in detA detB; do
    start_cluster "$det"
    "$BIN" loadgen --port "$ROUTER_PORT" --threads "$THREADS" --requests "$REQUESTS" \
        --seed "$SEED" --out "$WORK/$det.json" --marks-out "$WORK/$det.marks" >/dev/null
    stop_cluster
    grep -q '"status_5xx": 0' "$WORK/$det.json" \
        || { echo "cluster: steady-state run $det saw 5xx responses"; FAIL=1; }
    grep -q '"lost_acks": 0' "$WORK/$det.json" \
        || { echo "cluster: steady-state run $det lost acked marks"; FAIL=1; }
done
cmp -s "$WORK/detA.marks" "$WORK/detB.marks" \
    || { echo "cluster: two same-seed cluster runs diverged"; FAIL=1; }
cmp -s "$WORK/detA.marks" "$WORK/oracle.marks" \
    || { echo "cluster: replication changed the mark set vs the single-node oracle"; FAIL=1; }
CLUSTER_RPS="$(rps_of "$WORK/detA.json")"

# ---- Phase 3: kill -9 the primary mid-load --------------------------------
start_cluster fail
# A larger budget keeps the generator mid-flight at the kill; the 503
# retry budget (8 tries, doubling from 40 ms) outlasts any promotion.
"$BIN" loadgen --port "$ROUTER_PORT" --threads "$THREADS" --requests "$((REQUESTS * 5))" \
    --seed "$SEED" --retries 8 --backoff-ms 40 \
    --out "$WORK/failover.json" --marks-out "$WORK/acked.marks" >/dev/null &
LOADGEN_PID=$!
sleep 0.5
kill -9 "$N1_PID"
wait "$N1_PID" 2>/dev/null || true
wait "$LOADGEN_PID" || { echo "cluster: loadgen failed during failover"; FAIL=1; }

HEALTH="$("$BIN" get --port "$ROUTER_PORT" /healthz)"
FAILOVERS="$(printf '%s' "$HEALTH" | sed -n 's/.*"failovers":\([0-9]*\).*/\1/p')"
GENERATION="$(printf '%s' "$HEALTH" | sed -n 's/.*"generation":\([0-9]*\).*/\1/p')"
BLACKOUT_MS="$(printf '%s' "$HEALTH" | sed -n 's/.*"last_failover_blackout_ms":\([0-9]*\).*/\1/p')"
PROMOTION_SEQ="$(printf '%s' "$HEALTH" | sed -n 's/.*"last_promotion_seq":\([0-9]*\).*/\1/p')"
[ -n "$FAILOVERS" ] && [ "$FAILOVERS" -ge 1 ] \
    || { echo "cluster: router never failed over: $HEALTH"; FAIL=1; }
[ -n "$GENERATION" ] && [ "$GENERATION" -ge 2 ] \
    || { echo "cluster: promotion did not advance the generation: $HEALTH"; FAIL=1; }
"$BIN" get --port "$ROUTER_PORT" /metrics | grep -q '^cp_failover_total [1-9]' \
    || { echo "cluster: cp_failover_total never incremented"; FAIL=1; }

# Gate: the generator itself verified every acked mark against the final
# dump — lost_acks must be zero.
grep -q '"lost_acks": 0' "$WORK/failover.json" \
    || { echo "cluster: loadgen reported lost acked marks:"; \
         grep '"lost_acks"' "$WORK/failover.json"; FAIL=1; }
[ -s "$WORK/acked.marks" ] || { echo "cluster: no marks were acked before the kill"; FAIL=1; }

# Gate: no acked mark lost — every mark the client saw acknowledged must
# be in the promoted primary's final dump.
"$BIN" get --port "$ROUTER_PORT" /v1/marks >"$WORK/final.marks"
LOST="$(comm -23 "$WORK/acked.marks" "$WORK/final.marks")"
if [ -n "$LOST" ]; then
    echo "cluster: failover lost acked marks:"
    echo "$LOST"
    FAIL=1
fi
# Gate: zero invented marks. The final set may exceed the acked set (a
# record can replicate without its response surviving the kill), yet every
# mark must be one the fault-free single-node oracle also makes.
INVENTED="$(comm -23 "$WORK/final.marks" "$WORK/oracle.marks")"
if [ -n "$INVENTED" ]; then
    echo "cluster: failover invented marks the oracle never made:"
    echo "$INVENTED"
    FAIL=1
fi

# ---- Phase 4: the stale primary is fenced on rejoin -----------------------
# Restarting the dead primary's role at its old generation against the
# survivors must be refused: both survivors have witnessed generation 2.
REJOIN_LOG="$WORK/rejoin.log"
REJOIN_STATUS=0
"$BIN" serve --port 0 --seed "$SEED" --workers 2 --repl-generation 1 \
    --repl-follower "127.0.0.1:$N2_REPL" \
    --repl-follower "127.0.0.1:$N3_REPL" >"$REJOIN_LOG" 2>&1 || REJOIN_STATUS=$?
[ "$REJOIN_STATUS" -ne 0 ] \
    || { echo "cluster: stale-generation rejoin was accepted:"; cat "$REJOIN_LOG"; FAIL=1; }
grep -q "fenced" "$REJOIN_LOG" \
    || { echo "cluster: rejoin refusal did not name the fence:"; cat "$REJOIN_LOG"; FAIL=1; }
stop_cluster

# Zero panics anywhere, including the killed primary's partial log.
if grep -q "panicked" "$WORK"/*.log; then
    echo "cluster: a process panicked:"
    grep "panicked" "$WORK"/*.log
    FAIL=1
fi

[ "$FAIL" = "0" ] || { echo "cluster: FAILED"; exit 1; }

# ---- Report ---------------------------------------------------------------
ACKED_N="$(wc -l <"$WORK/acked.marks" | tr -d ' ')"
FINAL_N="$(wc -l <"$WORK/final.marks" | tr -d ' ')"
ORACLE_N="$(wc -l <"$WORK/oracle.marks" | tr -d ' ')"
RETRIED="$(sed -n 's/.*"retried_requests": \([0-9]*\).*/\1/p' "$WORK/failover.json")"
RATIO="$(awk -v clu="$CLUSTER_RPS" -v one="$SINGLE_RPS" \
    'BEGIN { printf "%.3f", (one + 0 > 0) ? clu / one : 0 }')"
cat >"$OUT" <<EOF
{
  "requests": $REQUESTS,
  "threads": $THREADS,
  "seed": $SEED,
  "single_node_rps": $SINGLE_RPS,
  "cluster_rps": $CLUSTER_RPS,
  "cluster_over_single": $RATIO,
  "failover": {
    "failovers": $FAILOVERS,
    "generation": $GENERATION,
    "blackout_ms": ${BLACKOUT_MS:-0},
    "records_replayed": ${PROMOTION_SEQ:-0},
    "retried_requests": ${RETRIED:-0},
    "acked_marks": $ACKED_N,
    "final_marks": $FINAL_N,
    "oracle_marks": $ORACLE_N
  }
}
EOF

echo "cluster: ${ACKED_N} acked / ${FINAL_N} final / ${ORACLE_N} oracle marks;" \
    "failover blackout ${BLACKOUT_MS:-0} ms at promotion seq ${PROMOTION_SEQ:-0};" \
    "cluster/single rps ${RATIO}"
echo "cluster: report written to $OUT"
